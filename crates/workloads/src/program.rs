//! The static program: a flat instruction table with per-instruction
//! behaviour generators.
//!
//! This plays the role of SMTSIM's "separate basic block dictionary in which
//! information of all static instructions is contained" (paper §4): *any*
//! address inside the program can be fetched, which is what permits execution
//! along wrong paths.

use std::sync::Arc;

use smt_isa::{Addr, InstClass, StaticInst, StaticInstId, INST_BYTES};

use crate::behavior::Behavior;

/// An immutable synthetic program.
///
/// Instructions occupy a contiguous address range starting at
/// [`Program::base`]; instruction `i` lives at `base + 4*i`.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    name: String,
    base: Addr,
    entry: Addr,
    insts: Arc<Vec<StaticInst>>,
    behaviors: Arc<Vec<Behavior>>,
    /// Block-extent table: `branch_dist[i]` is the distance (in
    /// instructions) from static index `i` to the first branch at or after
    /// it, or [`NO_BRANCH`] if none exists before the end of the program.
    /// Precomputed once so the fetch hot path resolves block boundaries in
    /// O(1) instead of scanning the instruction table.
    branch_dist: Arc<Vec<u32>>,
    data_footprint: u64,
}

/// Sentinel in the block-extent table: no branch between here and the end.
const NO_BRANCH: u32 = u32::MAX;

impl Program {
    /// Assembles a program from parallel instruction/behaviour tables.
    ///
    /// # Panics
    ///
    /// Panics if the tables have different lengths, the table is empty, if
    /// instruction addresses are not contiguous from `base`, or if `entry`
    /// is outside the program.
    pub fn new(
        name: impl Into<String>,
        base: Addr,
        entry: Addr,
        insts: Vec<StaticInst>,
        behaviors: Vec<Behavior>,
        data_footprint: u64,
    ) -> Self {
        assert_eq!(insts.len(), behaviors.len(), "table length mismatch");
        assert!(!insts.is_empty(), "empty program");
        for (i, inst) in insts.iter().enumerate() {
            assert_eq!(
                inst.addr,
                base.add_insts(i as u64),
                "non-contiguous instruction table at index {i}"
            );
            assert_eq!(inst.id, i as StaticInstId, "id/index mismatch at {i}");
        }
        // Block-extent table, built by one reverse sweep: each slot holds
        // the distance to the next branch at or after it.
        let mut branch_dist = vec![NO_BRANCH; insts.len()];
        let mut next: u32 = NO_BRANCH;
        for (i, inst) in insts.iter().enumerate().rev() {
            if inst.class.is_branch() {
                next = 0;
            } else if next != NO_BRANCH {
                next += 1;
            }
            branch_dist[i] = next;
        }
        let prog = Program {
            name: name.into(),
            base,
            entry,
            insts: Arc::new(insts),
            behaviors: Arc::new(behaviors),
            branch_dist: Arc::new(branch_dist),
            data_footprint,
        };
        assert!(prog.contains(entry), "entry point outside program");
        prog
    }

    /// Program name (benchmark clone name, e.g. `"gzip"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lowest instruction address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Entry point (first PC executed).
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program has no instructions (never: construction
    /// forbids it; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Static code footprint in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.insts.len() as u64 * INST_BYTES
    }

    /// Approximate data footprint in bytes (max over the access generators).
    pub fn data_footprint(&self) -> u64 {
        self.data_footprint
    }

    /// One past the highest instruction address.
    pub fn end(&self) -> Addr {
        self.base.add_insts(self.insts.len() as u64)
    }

    /// Whether `pc` is an instruction-aligned address inside the program.
    pub fn contains(&self, pc: Addr) -> bool {
        pc >= self.base && pc < self.end() && (pc - self.base).is_multiple_of(INST_BYTES)
    }

    /// The static instruction at `pc`, if `pc` is inside the program.
    pub fn inst_at(&self, pc: Addr) -> Option<&StaticInst> {
        if !self.contains(pc) {
            return None;
        }
        let idx = ((pc - self.base) / INST_BYTES) as usize;
        Some(&self.insts[idx])
    }

    /// The static instruction with table index `id`.
    pub fn inst(&self, id: StaticInstId) -> &StaticInst {
        &self.insts[id as usize]
    }

    /// The behaviour generator for static instruction `id`.
    pub fn behavior(&self, id: StaticInstId) -> &Behavior {
        &self.behaviors[id as usize]
    }

    /// Maps an arbitrary (possibly garbage, e.g. wrong-path) address onto a
    /// valid instruction address inside the program.
    ///
    /// Used when a wrong-path fetch follows a stale predicted target that no
    /// longer lands in the program; real hardware would fetch whatever bytes
    /// are there, and for timing purposes any instruction serves.
    pub fn clamp(&self, pc: Addr) -> Addr {
        if self.contains(pc) {
            return pc;
        }
        let span = self.insts.len() as u64;
        let slot = (pc.raw() / INST_BYTES) % span;
        self.base.add_insts(slot)
    }

    /// Finds the first branch at or after `pc`, scanning at most `max_insts`
    /// instructions, without leaving the program.
    ///
    /// Returns `(distance_in_insts_from_pc, &inst)`. This is the static
    /// information a classical fetch unit obtains from predecode bits /
    /// BTB probes: where the current basic block ends.
    pub fn first_branch_at_or_after(&self, pc: Addr, max_insts: u64) -> Option<(u64, &StaticInst)> {
        let start = self.inst_at(pc)?.id as usize;
        let dist = self.branch_dist[start];
        if dist == NO_BRANCH || u64::from(dist) >= max_insts {
            return None;
        }
        Some((u64::from(dist), &self.insts[start + dist as usize]))
    }

    /// Distance (in instructions) from static index `id` to the first
    /// branch at or after it, or `None` if the rest of the program is
    /// straight-line code. `Some(0)` means `id` itself is a branch.
    ///
    /// O(1): read from the precomputed block-extent table. This is what
    /// lets [`crate::Walker::next_block`] decode a whole straight-line run
    /// with one bounds check and no per-instruction class dispatch.
    pub fn dist_to_branch(&self, id: StaticInstId) -> Option<u32> {
        let dist = self.branch_dist[id as usize];
        (dist != NO_BRANCH).then_some(dist)
    }

    /// Iterates over the static instructions.
    pub fn iter(&self) -> impl Iterator<Item = &StaticInst> {
        self.insts.iter()
    }

    /// Static statistics useful for calibration checks.
    pub fn static_stats(&self) -> StaticStats {
        let mut s = StaticStats::default();
        for inst in self.insts.iter() {
            s.insts += 1;
            match inst.class {
                InstClass::Load => s.loads += 1,
                InstClass::Store => s.stores += 1,
                InstClass::Branch(k) => {
                    s.branches += 1;
                    if k.is_conditional() {
                        s.cond_branches += 1;
                    }
                }
                InstClass::FpAlu => s.fp += 1,
                _ => {}
            }
        }
        s
    }
}

/// Static instruction-mix counts for a program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StaticStats {
    /// Total static instructions.
    pub insts: u64,
    /// Static loads.
    pub loads: u64,
    /// Static stores.
    pub stores: u64,
    /// Static branches of any kind.
    pub branches: u64,
    /// Static conditional branches.
    pub cond_branches: u64,
    /// Static floating-point instructions.
    pub fp: u64,
}

impl StaticStats {
    /// Mean distance between branches ≈ static basic-block size.
    pub fn avg_bb_size(&self) -> f64 {
        if self.branches == 0 {
            return self.insts as f64;
        }
        self.insts as f64 / self.branches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::BranchKind;

    fn tiny_program() -> Program {
        // 4 instructions: alu, load, cond-branch, alu.
        let base = Addr::new(0x1000);
        let mk = |id: u32, class: InstClass, target: Option<Addr>| StaticInst {
            id,
            addr: base.add_insts(id as u64),
            class,
            dest: None,
            srcs: [None, None],
            target,
        };
        let insts = vec![
            mk(0, InstClass::IntAlu, None),
            mk(1, InstClass::Load, None),
            mk(2, InstClass::Branch(BranchKind::Cond), Some(base)),
            mk(3, InstClass::IntAlu, None),
        ];
        let behaviors = vec![
            Behavior::None,
            Behavior::Mem(crate::behavior::MemBehavior::Stride {
                base: Addr::new(0x10_0000),
                stride: 8,
                period: 16,
            }),
            Behavior::Branch(crate::behavior::BranchBehavior::Loop { period: 4 }),
            Behavior::None,
        ];
        Program::new("tiny", base, base, insts, behaviors, 128)
    }

    #[test]
    fn lookup_by_address() {
        let p = tiny_program();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert!(p.contains(Addr::new(0x1000)));
        assert!(p.contains(Addr::new(0x100c)));
        assert!(!p.contains(Addr::new(0x1010)));
        assert!(!p.contains(Addr::new(0x1002))); // misaligned
        assert_eq!(p.inst_at(Addr::new(0x1004)).unwrap().id, 1);
        assert!(p.inst_at(Addr::new(0xfff0)).is_none());
    }

    #[test]
    fn clamp_maps_garbage_into_program() {
        let p = tiny_program();
        for raw in [0u64, 0x1002, 0x5000, u64::MAX - 3] {
            let c = p.clamp(Addr::new(raw));
            assert!(p.contains(c), "clamp({raw:#x}) = {c} outside program");
        }
        // In-range addresses are unchanged.
        assert_eq!(p.clamp(Addr::new(0x1008)), Addr::new(0x1008));
    }

    #[test]
    fn first_branch_scan() {
        let p = tiny_program();
        let (dist, inst) = p.first_branch_at_or_after(Addr::new(0x1000), 16).unwrap();
        assert_eq!(dist, 2);
        assert_eq!(inst.id, 2);
        // Limited scan does not reach the branch.
        assert!(p.first_branch_at_or_after(Addr::new(0x1000), 2).is_none());
        // Scan starting at the branch itself.
        let (dist, _) = p.first_branch_at_or_after(Addr::new(0x1008), 1).unwrap();
        assert_eq!(dist, 0);
        // Scan past the last branch runs off the end.
        assert!(p.first_branch_at_or_after(Addr::new(0x100c), 16).is_none());
    }

    #[test]
    fn extent_table_matches_linear_scan() {
        // The O(1) lookup must agree with the definitional linear scan for
        // every (start, max) pair on a real generated program.
        let p = crate::ProgramBuilder::new(crate::BenchmarkProfile::by_name("gzip").unwrap())
            .seed(7)
            .build();
        let linear = |pc: Addr, max: u64| -> Option<(u64, u32)> {
            let start = p.inst_at(pc)?.id as u64;
            let limit = (start + max).min(p.len() as u64);
            (start..limit).find_map(|idx| {
                let inst = p.inst(idx as u32);
                inst.class.is_branch().then_some((idx - start, inst.id))
            })
        };
        for idx in (0..p.len() as u64).step_by(7) {
            let pc = p.base().add_insts(idx);
            for max in [0u64, 1, 2, 8, 16, 1_000_000] {
                let got = p
                    .first_branch_at_or_after(pc, max)
                    .map(|(d, inst)| (d, inst.id));
                assert_eq!(got, linear(pc, max), "start {idx}, max {max}");
            }
        }
        // dist_to_branch agrees with the (max-unbounded) lookup.
        for idx in (0..p.len() as u32).step_by(13) {
            let pc = p.base().add_insts(u64::from(idx));
            let via_scan = p.first_branch_at_or_after(pc, u64::MAX).map(|(d, _)| d);
            assert_eq!(p.dist_to_branch(idx).map(u64::from), via_scan, "id {idx}");
        }
    }

    #[test]
    fn static_stats_and_bb_size() {
        let p = tiny_program();
        let s = p.static_stats();
        assert_eq!(s.insts, 4);
        assert_eq!(s.loads, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.cond_branches, 1);
        assert!((s.avg_bb_size() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn construction_validates_addresses() {
        let base = Addr::new(0x1000);
        let insts = vec![StaticInst {
            id: 0,
            addr: Addr::new(0x2000),
            class: InstClass::IntAlu,
            dest: None,
            srcs: [None, None],
            target: None,
        }];
        let _ = Program::new("bad", base, base, insts, vec![Behavior::None], 0);
    }
}
