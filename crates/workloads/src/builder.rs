//! Synthesis of static programs from benchmark profiles.
//!
//! A program is a *driver* function plus `num_funcs` callee functions. Each
//! function is a sequence of **runs**: straight-line instructions followed by
//! one block-ending branch (so the run length distribution *is* the
//! basic-block size distribution, calibrated to Table 1 of the paper).
//! Run-ending branches are loop back-edges (bounded trip counts), forward
//! conditional skips (biased / patterned), calls (strictly to later-indexed
//! functions, so the call graph is a DAG and execution always terminates),
//! indirect jumps over a small forward target set, and one final return.
//! The driver loops forever, calling every callee in turn — the walker
//! simulates a fixed instruction budget, never program exit.

use smt_isa::{Addr, ArchReg, BranchKind, InstClass, StaticInst, NUM_ARCH_INT};

use crate::behavior::{Behavior, BranchBehavior, IndirectBehavior, MemBehavior};
use crate::program::Program;
use crate::rng::Srng;
use crate::spec::BenchmarkProfile;

/// Registers reserved for pointer-chase chains (`r = load [r]`); four
/// independent chains bound the memory-level parallelism of a
/// memory-bounded clone the way mcf's few active lists do.
const CHASE_REGS: [u16; 4] = [
    NUM_ARCH_INT - 1,
    NUM_ARCH_INT - 2,
    NUM_ARCH_INT - 3,
    NUM_ARCH_INT - 4,
];

/// Offset of the data region from the code base.
const DATA_OFFSET: u64 = 0x1000_0000;

/// Builds synthetic [`Program`]s from [`BenchmarkProfile`]s.
///
/// # Example
///
/// ```
/// use smt_workloads::{BenchmarkProfile, ProgramBuilder};
/// use smt_isa::Addr;
///
/// let prog = ProgramBuilder::new(BenchmarkProfile::gzip())
///     .base(Addr::new(0x40_0000))
///     .seed(7)
///     .build();
/// assert!(prog.len() > 500);
/// assert_eq!(prog.name(), "gzip");
/// ```
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    profile: BenchmarkProfile,
    base: Addr,
    seed: u64,
}

/// Placeholder targets patched after layout.
#[derive(Clone, Debug)]
enum Pending {
    /// No control-flow target (non-branch, or return).
    None,
    /// Start of run `run` of function `func`.
    Run { func: usize, run: usize },
    /// Entry of function `func`.
    Func(usize),
    /// Indirect target set: starts of the listed runs of `func`.
    IndirectRuns {
        func: usize,
        runs: Vec<usize>,
        salt: u64,
        sticky: u32,
    },
}

/// One instruction during generation, before addresses exist.
#[derive(Clone, Debug)]
struct GenInst {
    class: InstClass,
    dest: Option<ArchReg>,
    srcs: [Option<ArchReg>; 2],
    behavior: Behavior,
    target: Pending,
}

/// One function during generation.
#[derive(Clone, Debug, Default)]
struct GenFunc {
    insts: Vec<GenInst>,
    /// Index into `insts` of the first instruction of each run.
    run_starts: Vec<usize>,
}

impl ProgramBuilder {
    /// Creates a builder for the given profile with default base and seed.
    pub fn new(profile: BenchmarkProfile) -> Self {
        ProgramBuilder {
            profile,
            base: Addr::new(0x0040_0000),
            seed: 0,
        }
    }

    /// Sets the code base address (threads get disjoint address spaces).
    pub fn base(mut self, base: Addr) -> Self {
        self.base = base;
        self
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the program.
    pub fn build(self) -> Program {
        let p = &self.profile;
        let mut rng = Srng::new(self.seed ^ hash_name(p.name));
        let data_base = self.base + DATA_OFFSET;

        // Generate callees first (any callee may call higher-indexed ones),
        // then the driver, which calls each callee round-robin forever.
        let nf = p.num_funcs as usize;
        let mut funcs: Vec<GenFunc> = (0..nf)
            .map(|f| gen_function(p, &mut rng, f, nf, data_base))
            .collect();
        funcs.push(gen_driver(p, &mut rng, nf));
        let driver = nf; // index of the driver in `funcs`

        // Layout: driver first (entry point), then callees.
        let order: Vec<usize> = std::iter::once(driver).chain(0..nf).collect();
        let mut func_base = vec![0usize; funcs.len()];
        let mut cursor = 0usize;
        for &f in &order {
            func_base[f] = cursor;
            cursor += funcs[f].insts.len();
        }
        let total = cursor;

        // Address of the start of run `r` in function `f`.
        let run_addr = |f: usize, r: usize| -> Addr {
            self.base
                .add_insts((func_base[f] + funcs[f].run_starts[r]) as u64)
        };

        let mut insts = Vec::with_capacity(total);
        let mut behaviors = Vec::with_capacity(total);
        let mut id = 0u32;
        for &f in &order {
            for gi in &funcs[f].insts {
                let addr = self.base.add_insts(id as u64);
                let (target, behavior) = match &gi.target {
                    Pending::None => (None, gi.behavior.clone()),
                    Pending::Run { func: tf, run } => {
                        (Some(run_addr(*tf, *run)), gi.behavior.clone())
                    }
                    Pending::Func(tf) => (
                        Some(self.base.add_insts(func_base[*tf] as u64)),
                        gi.behavior.clone(),
                    ),
                    Pending::IndirectRuns {
                        func: tf,
                        runs,
                        salt,
                        sticky,
                    } => {
                        let targets = runs.iter().map(|&r| run_addr(*tf, r)).collect();
                        (
                            None,
                            Behavior::Indirect(IndirectBehavior {
                                targets,
                                salt: *salt,
                                sticky_run: *sticky,
                            }),
                        )
                    }
                };
                insts.push(StaticInst {
                    id,
                    addr,
                    class: gi.class,
                    dest: gi.dest,
                    srcs: gi.srcs,
                    target,
                });
                behaviors.push(behavior);
                id += 1;
            }
        }

        Program::new(
            p.name,
            self.base,
            self.base, // entry = first instruction of the driver
            insts,
            behaviors,
            p.working_set,
        )
    }
}

impl GenFunc {
    fn push(&mut self, gi: GenInst) {
        self.insts.push(gi);
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Generates the straight-line portion of a run (everything but the ending
/// branch): `len` instructions with the profile's mix and dependence shape.
fn gen_straight(
    p: &BenchmarkProfile,
    rng: &mut Srng,
    out: &mut GenFunc,
    len: u64,
    data_base: Addr,
) {
    // lint:allow(no-lossy-cast): bounded by min(24)
    let pool: Vec<u16> = (1..=p.dep_chains.min(24) as u16).collect();
    for _ in 0..len {
        let x = rng.f64();
        let m = p.mix;
        let (class, is_load, is_store, is_fp) = if x < m.load {
            (InstClass::Load, true, false, false)
        } else if x < m.load + m.store {
            (InstClass::Store, false, true, false)
        } else if x < m.load + m.store + m.fp {
            (InstClass::FpAlu, false, false, true)
        } else if x < m.load + m.store + m.fp + m.mul {
            (InstClass::IntMul, false, false, false)
        } else {
            (InstClass::IntAlu, false, false, false)
        };

        let pick_int = |rng: &mut Srng| ArchReg::int(*rng.pick(&pool));
        let pick_fp = |rng: &mut Srng| ArchReg::fp(*rng.pick(&pool));

        if is_load {
            let chase = rng.chance(p.chase_frac);
            let behavior = if chase {
                Behavior::Mem(MemBehavior::Chase {
                    base: data_base,
                    size: p.working_set,
                    salt: rng.next_u64(),
                })
            } else if rng.chance(p.stride_frac) {
                // Small private strided region inside the working set.
                let region = 1u64 << rng.range(10, 14); // 1–8 KB
                let offset = rng.range(0, (p.working_set.saturating_sub(region)).max(1));
                Behavior::Mem(MemBehavior::Stride {
                    base: data_base + (offset & !7),
                    stride: 8,
                    // lint:allow(no-lossy-cast): region ≤ 16 KB, so region/8 fits u32
                    period: (region / 8) as u32,
                })
            } else {
                Behavior::Mem(MemBehavior::Region {
                    base: data_base,
                    size: p.working_set,
                    salt: rng.next_u64(),
                })
            };
            let (dest, src) = if chase {
                // r = load [r]: serializes consecutive links of one chain;
                // distinct chains overlap their misses.
                let chain = ArchReg::int(*rng.pick(&CHASE_REGS));
                (chain, chain)
            } else {
                (pick_int(rng), pick_int(rng))
            };
            out.push(GenInst {
                class,
                dest: Some(dest),
                srcs: [Some(src), None],
                behavior,
                target: Pending::None,
            });
        } else if is_store {
            let behavior = if rng.chance(p.stride_frac) {
                let region = 1u64 << rng.range(10, 13);
                let offset = rng.range(0, (p.working_set.saturating_sub(region)).max(1));
                Behavior::Mem(MemBehavior::Stride {
                    base: data_base + (offset & !7),
                    stride: 8,
                    // lint:allow(no-lossy-cast): region ≤ 16 KB, so region/8 fits u32
                    period: (region / 8) as u32,
                })
            } else {
                Behavior::Mem(MemBehavior::Region {
                    base: data_base,
                    size: p.working_set,
                    salt: rng.next_u64(),
                })
            };
            out.push(GenInst {
                class,
                dest: None,
                srcs: [Some(pick_int(rng)), Some(pick_int(rng))],
                behavior,
                target: Pending::None,
            });
        } else if is_fp {
            let src2 = if rng.chance(0.5) {
                Some(pick_fp(rng))
            } else {
                None
            };
            out.push(GenInst {
                class,
                dest: Some(pick_fp(rng)),
                srcs: [Some(pick_fp(rng)), src2],
                behavior: Behavior::None,
                target: Pending::None,
            });
        } else {
            let src2 = if rng.chance(0.25) {
                Some(pick_int(rng))
            } else {
                None
            };
            out.push(GenInst {
                class,
                dest: Some(pick_int(rng)),
                srcs: [Some(pick_int(rng)), src2],
                behavior: Behavior::None,
                target: Pending::None,
            });
        }
    }
}

/// Conditional-branch direction behaviour for a *forward* (non-back-edge)
/// branch, drawn from the profile's mix.
fn forward_cond_behavior(p: &BenchmarkProfile, rng: &mut Srng) -> BranchBehavior {
    // `loop_frac` of conditionals are back edges, handled structurally; the
    // remaining mass splits between patterns, history-correlated branches
    // and Bernoulli branches.
    let rest = 1.0 - p.loop_frac;
    let pattern_share = if rest > 0.0 {
        p.pattern_frac / rest
    } else {
        0.0
    };
    let corr_share = if rest > 0.0 { p.corr_frac / rest } else { 0.0 };
    if rng.chance(pattern_share) {
        // Short alternation-style patterns (the classic history-
        // predictable case).
        let len = rng.range_u32(2, 5);
        BranchBehavior::Pattern {
            bits: 0b0110_1001 ^ (rng.next_u64() & 0b11),
            len,
        }
    } else if rng.chance(corr_share / (1.0 - pattern_share).max(1e-9)) {
        // Correlated with the recent path: mostly biased not-taken
        // marginally, fully determined by the last few outcomes.
        let pm = if rng.chance(0.5) {
            rng.range_u32(100, 301)
        } else {
            rng.range_u32(700, 901)
        };
        BranchBehavior::Correlated {
            p_taken_milli: pm,
            depth: rng.range_u32(2, 6),
            salt: rng.next_u64(),
        }
    } else if rng.chance(p.hard_frac) {
        // Hard branch: bias close to 1/2, independent noise per occurrence
        // — the accuracy ceiling no predictor beats.
        let pm = rng.range_u32(350, 651);
        BranchBehavior::Biased {
            p_taken_milli: pm,
            salt: rng.next_u64(),
            run: 1,
        }
    } else {
        // Easy branch: strongly biased, usually towards not-taken (error
        // checks / guard tests), sometimes mirrored; the direction is
        // phase-sticky over runs of occurrences, as in real codes.
        let (lo, hi) = p.bias_range;
        let base = lo + (hi - lo) * rng.f64();
        let p_taken = if rng.chance(0.35) { 1.0 - base } else { base };
        BranchBehavior::Biased {
            // lint:allow(no-lossy-cast): p_taken ∈ [0, 1], so at most 1000
            p_taken_milli: (p_taken * 1000.0) as u32,
            salt: rng.next_u64(),
            run: rng.range_u32(1000, 8000),
        }
    }
}

/// Generates one callee function.
fn gen_function(
    p: &BenchmarkProfile,
    rng: &mut Srng,
    this: usize,
    num_funcs: usize,
    data_base: Addr,
) -> GenFunc {
    let mut f = GenFunc::default();
    let runs = (p.runs_per_func as u64 * rng.range(75, 126) / 100).max(4) as usize;
    let bb_mean = p.avg_bb_size;
    let cap = (bb_mean * 4.0).ceil() as u64;

    // Pre-draw all run lengths, then rescale so the function's mean hits the
    // Table 1 target exactly. The blend of a geometric tail and a uniform
    // body keeps the short-tailed skew of real block-size distributions
    // while the rescale stops loop-weighted (dynamic) means from drifting.
    let mut lengths: Vec<u64> = (0..runs)
        .map(|_| {
            if rng.chance(0.3) {
                rng.geometric(bb_mean, cap.max(2))
            } else {
                let lo = (bb_mean * 0.6).max(1.0) as u64;
                let hi = (bb_mean * 1.4).max(2.0) as u64;
                rng.range(lo, hi + 1)
            }
        })
        .collect();
    let target_total = (runs as f64 * bb_mean).round() as i64;
    let mut total: i64 = lengths.iter().map(|&l| l as i64).sum();
    while total != target_total {
        let i = rng.range(0, runs as u64) as usize;
        if total < target_total && lengths[i] < cap {
            lengths[i] += 1;
            total += 1;
        } else if total > target_total && lengths[i] > 1 {
            lengths[i] -= 1;
            total -= 1;
        }
    }

    // Runs already covered by a previous back edge cannot start another one:
    // in-function loops never nest directly (nesting comes from calls), so a
    // single loop nest cannot multiply into dominating the dynamic stream.
    let mut last_back_edge: i64 = -1;

    for (r, &run_len) in lengths.iter().enumerate() {
        f.run_starts.push(f.insts.len());
        gen_straight(p, rng, &mut f, run_len.saturating_sub(1), data_base);

        // Ending branch.
        let last = r == runs - 1;
        let cond_src = ArchReg::int(1 + rng.range_u16(0, u64::from(p.dep_chains.min(24))));
        if last {
            f.push(GenInst {
                class: InstClass::Branch(BranchKind::Return),
                dest: None,
                srcs: [None, None],
                behavior: Behavior::None,
                target: Pending::None,
            });
            continue;
        }
        let x = rng.f64();
        let callable = this + 1 < num_funcs;
        if callable && x < p.call_frac {
            let callee = rng.range(this as u64 + 1, num_funcs as u64) as usize;
            f.push(GenInst {
                class: InstClass::Branch(BranchKind::Call),
                dest: None,
                srcs: [None, None],
                behavior: Behavior::None,
                target: Pending::Func(callee),
            });
        } else if x < p.call_frac + p.indirect_frac && r + 3 < runs {
            // Indirect jump over 2–6 forward runs.
            let k = rng.range(2, 7) as usize;
            let targets: Vec<usize> = (0..k)
                .map(|_| rng.range(r as u64 + 1, runs as u64) as usize)
                .collect();
            f.push(GenInst {
                class: InstClass::Branch(BranchKind::Indirect),
                dest: None,
                srcs: [Some(cond_src), None],
                behavior: Behavior::None,
                target: Pending::IndirectRuns {
                    func: this,
                    runs: targets,
                    salt: rng.next_u64(),
                    sticky: rng.range_u32(2, 17),
                },
            });
        } else if r >= 1
            && rng.chance(p.loop_frac)
            && (r as i64 - rng.range(2, 5).min(r as u64) as i64) > last_back_edge
        {
            // Back edge: loop over the last 2–4 runs (wider spans average
            // block sizes within the hot loop). The guard above re-draws the
            // span implicitly; recompute it deterministically from the rng
            // state for the actual edge.
            let span = rng.range(2, 5).min(r as u64) as usize;
            let span = span.min((r as i64 - last_back_edge - 1).max(1) as usize);
            let (lo, hi) = p.loop_period;
            let period = rng.range_u32(u64::from(lo), u64::from(hi) + 1);
            f.push(GenInst {
                class: InstClass::Branch(BranchKind::Cond),
                dest: None,
                srcs: [Some(cond_src), None],
                behavior: Behavior::Branch(BranchBehavior::Loop { period }),
                target: Pending::Run {
                    func: this,
                    run: r - span,
                },
            });
            last_back_edge = r as i64;
        } else {
            // Forward conditional skipping 1–2 runs.
            let skip = rng.range(1, 3) as usize;
            let tgt = (r + 1 + skip).min(runs - 1);
            f.push(GenInst {
                class: InstClass::Branch(BranchKind::Cond),
                dest: None,
                srcs: [Some(cond_src), None],
                behavior: Behavior::Branch(forward_cond_behavior(p, rng)),
                target: Pending::Run {
                    func: this,
                    run: tgt,
                },
            });
        }
    }
    f
}

/// Generates the driver: an infinite loop calling every callee in turn.
///
/// The driver's own function index is `num_funcs` (it is generated last).
fn gen_driver(p: &BenchmarkProfile, rng: &mut Srng, num_funcs: usize) -> GenFunc {
    let mut f = GenFunc::default();
    for callee in 0..num_funcs {
        f.run_starts.push(f.insts.len());
        // A couple of glue instructions between calls.
        let glue = rng.range(1, 4);
        for _ in 0..glue {
            f.push(GenInst {
                class: InstClass::IntAlu,
                dest: Some(ArchReg::int(
                    // lint:allow(no-lossy-cast): remainder < dep_chains ≤ 24
                    1 + (callee % p.dep_chains.max(1) as usize) as u16,
                )),
                srcs: [Some(ArchReg::int(1)), None],
                behavior: Behavior::None,
                target: Pending::None,
            });
        }
        f.push(GenInst {
            class: InstClass::Branch(BranchKind::Call),
            dest: None,
            srcs: [None, None],
            behavior: Behavior::None,
            target: Pending::Func(callee),
        });
    }
    // Jump back to the top of the driver, forever.
    f.run_starts.push(f.insts.len());
    f.push(GenInst {
        class: InstClass::Branch(BranchKind::Jump),
        dest: None,
        srcs: [None, None],
        behavior: Behavior::None,
        target: Pending::Run {
            func: num_funcs,
            run: 0,
        },
    });
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::InstClass;

    fn build(name: &str, seed: u64) -> Program {
        ProgramBuilder::new(BenchmarkProfile::by_name(name).unwrap())
            .seed(seed)
            .build()
    }

    #[test]
    fn build_is_deterministic() {
        let a = build("gzip", 1);
        let b = build("gzip", 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = build("gzip", 1);
        let b = build("gzip", 2);
        let same = a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x == y);
        assert!(!same);
    }

    #[test]
    fn every_benchmark_builds() {
        for p in BenchmarkProfile::all() {
            let prog = ProgramBuilder::new(p.clone()).seed(3).build();
            assert!(prog.len() > 200, "{} too small: {}", p.name, prog.len());
            // Static BB size should land near the Table 1 target.
            let bb = prog.static_stats().avg_bb_size();
            assert!(
                (bb - p.avg_bb_size).abs() / p.avg_bb_size < 0.30,
                "{}: static bb {bb:.2} vs target {:.2}",
                p.name,
                p.avg_bb_size
            );
        }
    }

    #[test]
    fn direct_branches_have_targets_inside_program() {
        let prog = build("gcc", 5);
        for inst in prog.iter() {
            if let InstClass::Branch(k) = inst.class {
                match k {
                    BranchKind::Cond | BranchKind::Jump | BranchKind::Call => {
                        let t = inst.target.expect("direct branch without target");
                        assert!(prog.contains(t), "target {t} outside program");
                    }
                    BranchKind::Return => assert!(inst.target.is_none()),
                    BranchKind::Indirect => {
                        if let crate::behavior::Behavior::Indirect(ib) = prog.behavior(inst.id) {
                            assert!(!ib.targets.is_empty());
                            for &t in &ib.targets {
                                assert!(prog.contains(t));
                            }
                        } else {
                            panic!("indirect branch without indirect behavior");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn calls_form_a_dag_toward_higher_addresses_only_from_entry() {
        // Callees are laid out after the driver; any call from a callee must
        // target a strictly later-laid-out function entry, guaranteeing
        // termination of every activation.
        let prog = build("vortex", 9);
        let mut entries: Vec<_> = prog
            .iter()
            .filter(|i| matches!(i.class, InstClass::Branch(BranchKind::Call)))
            .map(|i| i.target.unwrap())
            .collect();
        entries.sort();
        entries.dedup();
        for inst in prog.iter() {
            if matches!(inst.class, InstClass::Branch(BranchKind::Call)) {
                let t = inst.target.unwrap();
                // A call from inside a callee (i.e. from an address ≥ the
                // first callee entry) must go strictly forward.
                if !entries.is_empty() && inst.addr >= entries[0] {
                    assert!(t > inst.addr, "backward call {} -> {}", inst.addr, t);
                }
            }
        }
    }

    #[test]
    fn mem_instructions_have_mem_behavior() {
        let prog = build("mcf", 11);
        let mut chase = 0usize;
        let mut mem = 0usize;
        for inst in prog.iter() {
            if inst.class.is_mem() {
                match prog.behavior(inst.id) {
                    crate::behavior::Behavior::Mem(m) => {
                        mem += 1;
                        if m.is_chase() {
                            chase += 1;
                        }
                    }
                    other => panic!("mem inst with behavior {other:?}"),
                }
            }
        }
        assert!(mem > 100);
        // mcf has chase_frac 0.25 of loads; expect a visible chase share.
        assert!(chase as f64 > mem as f64 * 0.1, "chase {chase}/{mem}");
    }
}
