//! The program walker: deterministic oracle of the correct execution path.
//!
//! A [`Walker`] owns the architectural sequencing state of one thread — the
//! program counter, per-static-instruction occurrence counters, and the call
//! stack — and produces the thread's dynamic instruction stream one
//! instruction at a time. The simulator's fetch stage *advances the walker
//! only for correct-path instructions*; after a predicted branch diverges
//! from the oracle, subsequent instructions are synthesized as wrong-path
//! ([`Walker::wrong_path`]) without touching the walker, so recovery after a
//! squash is simply "resume fetching at [`Walker::pc`]".

// The walker is the oracle: a wrong-path query that violates its
// contract (e.g. resuming at a PC outside the program) is a simulator
// bug, not an input error, so it panics loudly rather than guessing.
// lint:allow-file(no-panic): the walker is the oracle; contract violations are simulator bugs and must abort

use std::fmt;
use std::sync::Arc;

use smt_isa::{
    snap_mismatch, Addr, BranchKind, Diagnostic, DynInst, InstClass, MemAccess, Snap, SnapReader,
    SnapWriter, ThreadId,
};

use crate::behavior::Behavior;
use crate::program::Program;

/// Hard bound on call-stack depth; exceeding it indicates a broken program.
const MAX_CALL_DEPTH: usize = 1024;

/// Maximum number of instructions a walker can roll back
/// ([`Walker::rollback`]); sized to cover any realistic in-flight window.
/// A power of two so the undo ring wraps by masking, not division.
const UNDO_DEPTH: usize = 2048;
const _: () = assert!(UNDO_DEPTH.is_power_of_two());

/// Undo-log record for one produced instruction.
#[derive(Clone, Copy, Debug)]
struct UndoRecord {
    pc_before: Addr,
    static_id: u32,
    path_hist_before: u64,
    /// Call-stack effect to undo: `Pushed` pops, `Popped(a)` re-pushes `a`.
    stack_op: StackOp,
}

#[derive(Clone, Copy, Debug)]
enum StackOp {
    None,
    Pushed,
    Popped(Addr),
}

impl Snap for StackOp {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            StackOp::None => w.u8(0),
            StackOp::Pushed => w.u8(1),
            StackOp::Popped(a) => {
                w.u8(2);
                w.addr(*a);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        match r.u8()? {
            0 => Ok(StackOp::None),
            1 => Ok(StackOp::Pushed),
            2 => Ok(StackOp::Popped(r.addr()?)),
            b => Err(snap_mismatch(
                "walker.undo.stack_op",
                format!("invalid StackOp tag {b}"),
            )),
        }
    }
}

impl Snap for UndoRecord {
    fn save(&self, w: &mut SnapWriter) {
        w.addr(self.pc_before);
        w.u32(self.static_id);
        w.u64(self.path_hist_before);
        self.stack_op.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(UndoRecord {
            pc_before: r.addr()?,
            static_id: r.u32()?,
            path_hist_before: r.u64()?,
            stack_op: StackOp::load(r)?,
        })
    }
}

/// Fixed-capacity inline ring of the last [`UNDO_DEPTH`] undo records.
///
/// Replaces the former `VecDeque`: the storage is an array embedded in the
/// walker (no heap indirection, no reallocation ever) and the write/read
/// cursors wrap by masking (no modulo or branchy capacity checks on the
/// per-instruction hot path). Pushing beyond capacity overwrites the oldest
/// record, exactly like the old bounded deque.
#[derive(Clone)]
struct UndoRing {
    buf: [UndoRecord; UNDO_DEPTH],
    /// Index of the oldest live record.
    head: usize,
    /// Number of live records (≤ `UNDO_DEPTH`).
    len: usize,
}

impl UndoRing {
    fn new() -> Self {
        const EMPTY: UndoRecord = UndoRecord {
            pc_before: Addr::NULL,
            static_id: 0,
            path_hist_before: 0,
            stack_op: StackOp::None,
        };
        UndoRing {
            buf: [EMPTY; UNDO_DEPTH],
            head: 0,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Appends a record, overwriting the oldest once full.
    #[inline]
    fn push(&mut self, rec: UndoRecord) {
        const MASK: usize = UNDO_DEPTH - 1;
        if self.len == UNDO_DEPTH {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) & MASK;
        } else {
            self.buf[(self.head + self.len) & MASK] = rec;
            self.len += 1;
        }
    }

    /// Removes and returns the newest record.
    #[inline]
    fn pop(&mut self) -> Option<UndoRecord> {
        const MASK: usize = UNDO_DEPTH - 1;
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.buf[(self.head + self.len) & MASK])
    }

    /// Serializes the full ring — every slot plus the cursors — so that a
    /// restored walker re-snapshots byte-identically to the original
    /// (dead slots included; see DESIGN.md §13).
    fn save_state(&self, w: &mut SnapWriter) {
        for rec in &self.buf {
            rec.save(w);
        }
        w.usize(self.head);
        w.usize(self.len);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        for rec in self.buf.iter_mut() {
            *rec = UndoRecord::load(r)?;
        }
        let head = r.usize()?;
        let len = r.usize()?;
        if head >= UNDO_DEPTH || len > UNDO_DEPTH {
            return Err(snap_mismatch(
                "walker.undo",
                format!("undo cursors out of range (head {head}, len {len}, depth {UNDO_DEPTH})"),
            ));
        }
        self.head = head;
        self.len = len;
        Ok(())
    }
}

impl fmt::Debug for UndoRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The 2048-slot buffer is noise; report the live extent only.
        f.debug_struct("UndoRing")
            .field("head", &self.head)
            .field("len", &self.len)
            .finish()
    }
}

/// Deterministic generator of one thread's dynamic instruction stream.
#[derive(Clone, Debug)]
pub struct Walker {
    /// Shared, immutable program: walkers (and their clones across sweep
    /// cells) reference one `Program` instead of each owning a copy.
    program: Arc<Program>,
    thread: ThreadId,
    pc: Addr,
    counters: Vec<u64>,
    ret_stack: Vec<Addr>,
    produced: u64,
    /// Architectural conditional-outcome history (most recent in bit 0);
    /// the input of `BranchBehavior::Correlated` generators.
    path_hist: u64,
    /// Ring of undo records for [`Walker::rollback`].
    undo: UndoRing,
}

impl Walker {
    /// Creates a walker positioned at the program's entry point.
    ///
    /// Accepts either a bare [`Program`] (wrapped into an `Arc`) or an
    /// already-shared `Arc<Program>`; passing the latter lets every thread
    /// of a workload — and every sweep cell simulating it — share one
    /// program allocation.
    pub fn new(program: impl Into<Arc<Program>>, thread: ThreadId) -> Self {
        let program = program.into();
        let n = program.len();
        let pc = program.entry();
        Walker {
            program,
            thread,
            pc,
            counters: vec![0; n],
            // Pre-sized to the hard depth bound: a call can never grow the
            // stack mid-simulation (the steady-state loop is allocation-free).
            ret_stack: Vec::with_capacity(MAX_CALL_DEPTH),
            produced: 0,
            path_hist: 0,
            undo: UndoRing::new(),
        }
    }

    /// The program being walked.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The thread this walker sequences.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// PC of the next correct-path instruction.
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Number of correct-path instructions produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Current call-stack depth.
    pub fn call_depth(&self) -> usize {
        self.ret_stack.len()
    }

    /// Produces the next correct-path dynamic instruction and advances.
    ///
    /// # Panics
    ///
    /// Panics if the walker's PC left the program or the call stack
    /// over/underflows — both indicate a malformed program, which the
    /// builder's construction rules out.
    pub fn next_inst(&mut self) -> DynInst {
        let inst = *self
            .program
            .inst_at(self.pc)
            .unwrap_or_else(|| panic!("correct-path pc {} outside program", self.pc));
        let n = self.counters[inst.id as usize];
        self.counters[inst.id as usize] = n + 1;

        let mut undo = UndoRecord {
            pc_before: self.pc,
            static_id: inst.id,
            path_hist_before: self.path_hist,
            stack_op: StackOp::None,
        };
        let fall = inst.fall_through();
        let mut taken = false;
        let mut mem = None;
        let next_pc = match inst.class {
            InstClass::Branch(BranchKind::Cond) => {
                let behavior = match self.program.behavior(inst.id) {
                    Behavior::Branch(b) => b,
                    other => panic!("cond branch {} with behavior {other:?}", inst.addr),
                };
                taken = behavior.taken(n, self.path_hist);
                self.path_hist = (self.path_hist << 1) | taken as u64;
                if taken {
                    inst.target.expect("cond branch without target")
                } else {
                    fall
                }
            }
            InstClass::Branch(BranchKind::Jump) => {
                taken = true;
                inst.target.expect("jump without target")
            }
            InstClass::Branch(BranchKind::Call) => {
                taken = true;
                assert!(
                    self.ret_stack.len() < MAX_CALL_DEPTH,
                    "call depth exceeded at {}",
                    inst.addr
                );
                self.ret_stack.push(fall);
                undo.stack_op = StackOp::Pushed;
                inst.target.expect("call without target")
            }
            InstClass::Branch(BranchKind::Return) => {
                taken = true;
                let ret = self
                    .ret_stack
                    .pop()
                    .unwrap_or_else(|| panic!("return with empty stack at {}", inst.addr));
                undo.stack_op = StackOp::Popped(ret);
                ret
            }
            InstClass::Branch(BranchKind::Indirect) => {
                taken = true;
                match self.program.behavior(inst.id) {
                    Behavior::Indirect(ib) => ib.target(n),
                    other => panic!("indirect branch {} with behavior {other:?}", inst.addr),
                }
            }
            InstClass::Load | InstClass::Store => {
                let m = match self.program.behavior(inst.id) {
                    Behavior::Mem(m) => m,
                    other => panic!("mem inst {} with behavior {other:?}", inst.addr),
                };
                mem = Some(MemAccess {
                    addr: m.address(n),
                    chased: m.is_chase(),
                });
                fall
            }
            _ => fall,
        };

        self.pc = next_pc;
        self.produced += 1;
        self.undo.push(undo);
        DynInst {
            thread: self.thread,
            static_id: inst.id,
            pc: inst.addr,
            class: inst.class,
            dest: inst.dest,
            srcs: inst.srcs,
            mem,
            taken,
            next_pc,
            wrong_path: false,
        }
    }

    /// Produces up to `min(max, out.len())` correct-path instructions into
    /// `out` in one call, returning the number written.
    ///
    /// Decoding stops early after any instruction whose `next_pc` is not
    /// the sequential successor (a taken branch or other control transfer),
    /// so each call yields one *straight-line fetch run*. The result — the
    /// instructions, every architectural side effect (counters, call stack,
    /// path history, undo log) and the final [`Walker::pc`] — is exactly
    /// what the same number of [`Walker::next_inst`] calls would produce;
    /// [`Walker::rollback`] works across bulk-produced instructions
    /// unchanged. Proven by `next_block_equals_repeated_next_inst`.
    ///
    /// The fast path: the program's precomputed block-extent table
    /// ([`Program::dist_to_branch`]) identifies the whole non-branch run up
    /// front, which amortizes the per-instruction `inst_at` bounds check
    /// and skips behaviour dispatch for everything but loads and stores.
    /// Branches fall back to the full [`Walker::next_inst`] logic.
    ///
    /// # Panics
    ///
    /// As [`Walker::next_inst`], if the PC left the program or the call
    /// stack over/underflows.
    pub fn next_block(&mut self, out: &mut [DynInst], max: usize) -> usize {
        let cap = max.min(out.len());
        let mut produced = 0usize;
        while produced < cap {
            let first = *self
                .program
                .inst_at(self.pc)
                .unwrap_or_else(|| panic!("correct-path pc {} outside program", self.pc));
            let to_end = self.program.len() - first.id as usize;
            // Length of the straight-line (branch-free) run starting here:
            // up to the next branch, or to the end of the program.
            let straight = match self.program.dist_to_branch(first.id) {
                Some(d) => d as usize,
                None => to_end,
            };
            if straight == 0 {
                // A branch heads the run: take the full decode path.
                let di = self.next_inst();
                out[produced] = di;
                produced += 1;
                if di.next_pc != di.pc.add_insts(1) {
                    break;
                }
                continue;
            }
            let run = straight.min(cap - produced);
            for k in 0..run {
                let id = first.id + k as u32; // lint:allow(no-lossy-cast): k < run, which is capped at the per-block fetch width
                let inst = *self.program.inst(id);
                let n = self.counters[id as usize];
                self.counters[id as usize] = n + 1;
                let mem = match inst.class {
                    InstClass::Load | InstClass::Store => {
                        let m = match self.program.behavior(id) {
                            Behavior::Mem(m) => m,
                            other => panic!("mem inst {} with behavior {other:?}", inst.addr),
                        };
                        Some(MemAccess {
                            addr: m.address(n),
                            chased: m.is_chase(),
                        })
                    }
                    _ => None,
                };
                self.undo.push(UndoRecord {
                    pc_before: inst.addr,
                    static_id: id,
                    path_hist_before: self.path_hist,
                    stack_op: StackOp::None,
                });
                out[produced + k] = DynInst {
                    thread: self.thread,
                    static_id: id,
                    pc: inst.addr,
                    class: inst.class,
                    dest: inst.dest,
                    srcs: inst.srcs,
                    mem,
                    taken: false,
                    next_pc: inst.fall_through(),
                    wrong_path: false,
                };
            }
            self.pc = first.addr.add_insts(run as u64);
            self.produced += run as u64;
            produced += run;
        }
        produced
    }

    /// Rolls the walker back by `n` instructions, exactly undoing the last
    /// `n` calls to [`Walker::next_inst`].
    ///
    /// Used by flush-style fetch policies that squash *correct-path*
    /// instructions (e.g. Tullsen & Brown's FLUSH for long-latency loads):
    /// the squashed instructions will be re-fetched, so the oracle must
    /// rewind.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the undo-log depth (2048) or the number of
    /// instructions produced.
    pub fn rollback(&mut self, n: u64) {
        assert!(
            n <= self.undo.len() as u64,
            "rollback of {n} exceeds undo depth {}",
            self.undo.len()
        );
        for _ in 0..n {
            let u = self.undo.pop().expect("checked");
            self.pc = u.pc_before;
            self.path_hist = u.path_hist_before;
            self.counters[u.static_id as usize] -= 1;
            match u.stack_op {
                StackOp::None => {}
                StackOp::Pushed => {
                    let _ = self.ret_stack.pop();
                }
                StackOp::Popped(a) => self.ret_stack.push(a),
            }
            self.produced -= 1;
        }
    }

    /// Synthesizes a wrong-path dynamic instruction at `pc` without
    /// advancing the walker.
    ///
    /// Wrong-path branches resolve *as predicted* (`spec_taken`,
    /// `spec_target`): they never trigger nested redirects, a standard
    /// trace-driven-simulation simplification — every wrong-path instruction
    /// is squashed when the diverging correct-path branch resolves.
    /// Wrong-path loads and stores still carry effective addresses so that
    /// they occupy memory pipelines and pollute caches realistically.
    pub fn wrong_path(&self, pc: Addr, spec_taken: bool, spec_target: Addr) -> DynInst {
        let pc = self.program.clamp(pc);
        let inst = *self.program.inst_at(pc).expect("clamp returns valid pc");
        let n = self.counters[inst.id as usize];
        let fall = inst.fall_through();

        let mut mem = None;
        let mut taken = false;
        let next_pc = match inst.class {
            InstClass::Branch(kind) => {
                taken = kind.is_unconditional() || spec_taken;
                if taken {
                    let t = if !spec_target.is_null() {
                        spec_target
                    } else if let Some(t) = inst.target {
                        t
                    } else {
                        fall
                    };
                    self.program.clamp(t)
                } else {
                    fall
                }
            }
            InstClass::Load | InstClass::Store => {
                if let Behavior::Mem(m) = self.program.behavior(inst.id) {
                    mem = Some(MemAccess {
                        addr: m.address(n),
                        chased: m.is_chase(),
                    });
                }
                fall
            }
            _ => fall,
        };

        DynInst {
            thread: self.thread,
            static_id: inst.id,
            pc: inst.addr,
            class: inst.class,
            dest: inst.dest,
            srcs: inst.srcs,
            mem,
            taken,
            next_pc,
            wrong_path: true,
        }
    }

    /// Serializes the walker's architectural state (PC, occurrence
    /// counters, call stack, path history, produced count, and the complete
    /// undo ring) into `w` in the snapshot format (DESIGN.md §13).
    ///
    /// The program itself is *not* serialized: it is immutable, derived from
    /// the workload seed, and re-supplied at restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.addr(self.pc);
        smt_isa::save_vec(w, &self.counters);
        smt_isa::save_vec(w, &self.ret_stack);
        w.u64(self.produced);
        w.u64(self.path_hist);
        self.undo.save_state(w);
    }

    /// Restores state written by [`Walker::save_state`] in place, keeping
    /// every existing allocation (the zero-allocation steady state must
    /// survive a restore).
    ///
    /// Fails with an `E0018` diagnostic if the snapshot's geometry does not
    /// match this walker's program (wrong counter-table length, call stack
    /// deeper than the hard bound, or a PC outside the program).
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        let pc = r.addr()?;
        if !self.program.contains(pc) {
            return Err(snap_mismatch(
                "walker.pc",
                format!("restored pc {pc} is outside the program"),
            ));
        }
        let mut counters = std::mem::take(&mut self.counters);
        smt_isa::load_vec_into(r, &mut counters)?;
        if counters.len() != self.program.len() {
            return Err(snap_mismatch(
                "walker.counters",
                format!(
                    "snapshot has {} occurrence counters, program has {} instructions",
                    counters.len(),
                    self.program.len()
                ),
            ));
        }
        self.counters = counters;
        smt_isa::load_vec_into(r, &mut self.ret_stack)?;
        if self.ret_stack.len() > MAX_CALL_DEPTH {
            return Err(snap_mismatch(
                "walker.ret_stack",
                format!(
                    "restored call stack depth {} exceeds bound {MAX_CALL_DEPTH}",
                    self.ret_stack.len()
                ),
            ));
        }
        self.pc = pc;
        self.produced = r.u64()?;
        self.path_hist = r.u64()?;
        self.undo.load_state(r)
    }

    /// Runs the walker forward `n` instructions, returning summary dynamic
    /// statistics. Useful for workload calibration and tests.
    pub fn measure(&mut self, n: u64) -> DynStats {
        let mut s = DynStats::default();
        for _ in 0..n {
            let d = self.next_inst();
            s.insts += 1;
            match d.class {
                InstClass::Load => s.loads += 1,
                InstClass::Store => s.stores += 1,
                InstClass::FpAlu => s.fp += 1,
                InstClass::Branch(k) => {
                    s.branches += 1;
                    if d.taken {
                        s.taken += 1;
                    }
                    if k.is_conditional() {
                        s.cond_branches += 1;
                        if d.taken {
                            s.cond_taken += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        s
    }
}

/// Dynamic-stream summary statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DynStats {
    /// Dynamic instructions measured.
    pub insts: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic floating-point instructions.
    pub fp: u64,
    /// Dynamic branches of any kind.
    pub branches: u64,
    /// Dynamic taken branches of any kind.
    pub taken: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Dynamic taken conditional branches.
    pub cond_taken: u64,
}

impl DynStats {
    /// Average dynamic basic-block size (instructions per branch) — the
    /// Table 1 metric.
    pub fn avg_bb_size(&self) -> f64 {
        if self.branches == 0 {
            return self.insts as f64;
        }
        self.insts as f64 / self.branches as f64
    }

    /// Average stream length (instructions per *taken* branch) — what bounds
    /// the stream front-end's fetch blocks.
    pub fn avg_stream_len(&self) -> f64 {
        if self.taken == 0 {
            return self.insts as f64;
        }
        self.insts as f64 / self.taken as f64
    }

    /// Fraction of branches that are taken.
    pub fn taken_rate(&self) -> f64 {
        if self.branches == 0 {
            return 0.0;
        }
        self.taken as f64 / self.branches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::spec::BenchmarkProfile;

    fn walker(name: &str, seed: u64) -> Walker {
        let prog = ProgramBuilder::new(BenchmarkProfile::by_name(name).unwrap())
            .seed(seed)
            .build();
        Walker::new(prog, 0)
    }

    #[test]
    fn walker_is_deterministic() {
        let mut a = walker("gzip", 1);
        let mut b = walker("gzip", 1);
        for _ in 0..50_000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn walker_runs_long_without_stack_blowup() {
        let mut w = walker("vortex", 2);
        for _ in 0..300_000 {
            let _ = w.next_inst();
            assert!(w.call_depth() < 100);
        }
        assert_eq!(w.produced(), 300_000);
    }

    #[test]
    fn next_pc_chains_form_a_path() {
        let mut w = walker("gcc", 3);
        let mut prev_next = w.pc();
        for _ in 0..20_000 {
            let d = w.next_inst();
            assert_eq!(d.pc, prev_next, "stream must be contiguous");
            prev_next = d.next_pc;
        }
    }

    #[test]
    fn dynamic_bb_size_tracks_table1() {
        for (name, expect) in [("gzip", 11.02), ("mcf", 3.92), ("twolf", 8.00)] {
            let mut w = walker(name, 4);
            // Warm up past the driver prologue, then measure.
            let _ = w.measure(20_000);
            let s = w.measure(300_000);
            let bb = s.avg_bb_size();
            assert!(
                (bb - expect).abs() / expect < 0.35,
                "{name}: dynamic bb {bb:.2} vs Table 1 {expect:.2}"
            );
        }
    }

    #[test]
    fn streams_are_longer_than_basic_blocks() {
        // Average across seeds: a single seed can land on a taken-heavy
        // hot loop, but on average streams span several basic blocks.
        let mut ratio_sum = 0.0;
        for seed in [5u64, 6, 7] {
            let mut w = walker("gzip", seed);
            let s = w.measure(200_000);
            ratio_sum += s.avg_stream_len() / s.avg_bb_size();
            assert!(s.taken_rate() > 0.3 && s.taken_rate() < 0.95);
        }
        assert!(
            ratio_sum / 3.0 > 1.2,
            "mean stream/bb ratio {:.2}",
            ratio_sum / 3.0
        );
    }

    /// Placeholder for pre-sizing `next_block` scratch buffers in tests.
    fn dummy_inst() -> DynInst {
        DynInst {
            thread: 0,
            static_id: 0,
            pc: Addr::NULL,
            class: InstClass::IntAlu,
            dest: None,
            srcs: [None, None],
            mem: None,
            taken: false,
            next_pc: Addr::NULL,
            wrong_path: false,
        }
    }

    #[test]
    fn next_block_equals_repeated_next_inst() {
        // Across every benchmark profile: a bulk walker and a single-step
        // walker over the same shared program produce identical instruction
        // streams and identical architectural state after every block —
        // including across mid-block rollbacks on both sides.
        for (pi, profile) in BenchmarkProfile::all().iter().enumerate() {
            let prog = std::sync::Arc::new(
                ProgramBuilder::new(profile.clone())
                    .seed(0x600d ^ pi as u64)
                    .build(),
            );
            let mut bulk = Walker::new(prog.clone(), 0);
            let mut single = Walker::new(prog, 0);
            let mut rng = crate::Srng::new(0xb10c ^ pi as u64);
            let mut buf = vec![dummy_inst(); 16];
            for round in 0..3_000u64 {
                let max = 1 + rng.range(0, 16) as usize;
                let k = bulk.next_block(&mut buf, max);
                assert!(
                    k >= 1 && k <= max,
                    "{}: produced {k} of {max}",
                    profile.name
                );
                for slot in buf.iter().take(k) {
                    assert_eq!(*slot, single.next_inst(), "{} round {round}", profile.name);
                }
                // The stop contract: everything before the last produced
                // instruction is sequential; a short block ends at a
                // control transfer.
                for slot in buf.iter().take(k - 1) {
                    assert_eq!(slot.next_pc, slot.pc.add_insts(1), "{}", profile.name);
                }
                if k < max.min(buf.len()) {
                    assert_ne!(
                        buf[k - 1].next_pc,
                        buf[k - 1].pc.add_insts(1),
                        "{}: short block must end at a control transfer",
                        profile.name
                    );
                }
                assert_eq!(bulk.pc(), single.pc(), "{} round {round}", profile.name);
                assert_eq!(bulk.produced(), single.produced(), "{}", profile.name);
                assert_eq!(bulk.call_depth(), single.call_depth(), "{}", profile.name);
                // Mid-block rollback: rewind both walkers into the block
                // just produced and replay.
                if rng.chance(0.2) && k > 1 {
                    let back = 1 + rng.range(0, k as u64 - 1);
                    bulk.rollback(back);
                    single.rollback(back);
                    assert_eq!(bulk.pc(), single.pc(), "{} rollback {back}", profile.name);
                    for _ in 0..back {
                        let j = bulk.next_block(&mut buf, 1);
                        assert_eq!(j, 1);
                        assert_eq!(buf[0], single.next_inst(), "{} replay", profile.name);
                    }
                }
            }
        }
    }

    #[test]
    fn next_block_respects_buffer_and_max_caps() {
        let mut w = walker("gzip", 42);
        let mut buf = vec![dummy_inst(); 4];
        // Slice shorter than max: the slice wins.
        let k = w.next_block(&mut buf, 100);
        assert!(k <= 4);
        // max shorter than slice: max wins.
        let k = w.next_block(&mut buf, 2);
        assert!(k <= 2);
        // A zero-length request produces nothing and moves nothing.
        let pc = w.pc();
        assert_eq!(w.next_block(&mut buf, 0), 0);
        assert_eq!(w.pc(), pc);
    }

    #[test]
    fn rollback_exactly_undoes_next_inst() {
        let mut w = walker("vortex", 11);
        for _ in 0..5_000 {
            let _ = w.next_inst();
        }
        // Snapshot the next 300 instructions, roll back, re-produce.
        let pc = w.pc();
        let depth = w.call_depth();
        let produced = w.produced();
        let first: Vec<_> = (0..300).map(|_| w.next_inst()).collect();
        w.rollback(300);
        assert_eq!(w.pc(), pc);
        assert_eq!(w.call_depth(), depth);
        assert_eq!(w.produced(), produced);
        let second: Vec<_> = (0..300).map(|_| w.next_inst()).collect();
        assert_eq!(first, second, "rollback must be exact");
    }

    #[test]
    fn partial_rollback_replays_the_tail() {
        let mut w = walker("gcc", 12);
        let all: Vec<_> = (0..100).map(|_| w.next_inst()).collect();
        w.rollback(40);
        let tail: Vec<_> = (0..40).map(|_| w.next_inst()).collect();
        assert_eq!(&all[60..], &tail[..]);
    }

    #[test]
    #[should_panic(expected = "rollback")]
    fn rollback_beyond_log_panics() {
        let mut w = walker("gzip", 13);
        let _ = w.next_inst();
        w.rollback(2);
    }

    #[test]
    fn wrong_path_does_not_advance_state() {
        let mut w = walker("parser", 6);
        for _ in 0..1000 {
            let _ = w.next_inst();
        }
        let pc_before = w.pc();
        let produced_before = w.produced();
        let wp = w.wrong_path(pc_before, false, Addr::NULL);
        assert!(wp.wrong_path);
        assert_eq!(w.pc(), pc_before);
        assert_eq!(w.produced(), produced_before);
        // Correct path resumes untouched.
        let d = w.next_inst();
        assert_eq!(d.pc, pc_before);
        assert!(!d.wrong_path);
    }

    #[test]
    fn wrong_path_clamps_garbage_pcs() {
        let w = walker("eon", 7);
        let wp = w.wrong_path(Addr::new(0xdead_beef_0001), true, Addr::new(0x3));
        assert!(wp.wrong_path);
        assert!(w.program().contains(wp.pc));
        assert!(w.program().contains(wp.next_pc) || !wp.taken);
    }

    #[test]
    fn wrong_path_branches_follow_speculation() {
        let mut w = walker("gzip", 8);
        // Find a conditional branch on the correct path.
        let mut branch_pc = None;
        for _ in 0..10_000 {
            let d = w.next_inst();
            if d.is_cond_branch() {
                branch_pc = Some(d.pc);
                break;
            }
        }
        let pc = branch_pc.expect("no branch found");
        let tgt = w.program().inst_at(pc).unwrap().target.unwrap();
        let wp_taken = w.wrong_path(pc, true, tgt);
        assert!(wp_taken.taken);
        assert_eq!(wp_taken.next_pc, tgt);
        let wp_nt = w.wrong_path(pc, false, Addr::NULL);
        assert!(!wp_nt.taken);
        assert_eq!(wp_nt.next_pc, pc.add_insts(1));
    }

    #[test]
    fn snapshot_round_trip_resumes_identically() {
        let prog = std::sync::Arc::new(
            ProgramBuilder::new(BenchmarkProfile::by_name("vortex").unwrap())
                .seed(21)
                .build(),
        );
        let mut w = Walker::new(prog.clone(), 0);
        for _ in 0..7_777 {
            let _ = w.next_inst();
        }
        let mut buf = SnapWriter::new();
        w.save_state(&mut buf);
        let bytes = buf.into_bytes();

        // The original continues; a fresh walker restores and must follow.
        let mut restored = Walker::new(prog, 0);
        let mut r = SnapReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(restored.pc(), w.pc());
        assert_eq!(restored.produced(), w.produced());
        assert_eq!(restored.call_depth(), w.call_depth());
        for i in 0..5_000 {
            assert_eq!(restored.next_inst(), w.next_inst(), "inst {i}");
        }
        // Rollback across the restore boundary works (the undo ring was
        // carried over in full).
        restored.rollback(1_500);
        w.rollback(1_500);
        for i in 0..1_500 {
            assert_eq!(restored.next_inst(), w.next_inst(), "replay {i}");
        }
        // Re-snapshotting the restored walker is byte-identical.
        let mut again = SnapWriter::new();
        restored.save_state(&mut again);
        let mut orig = SnapWriter::new();
        w.save_state(&mut orig);
        assert_eq!(again.into_bytes(), orig.into_bytes());
    }

    #[test]
    fn snapshot_geometry_mismatch_is_a_diagnostic() {
        let mut w = walker("gzip", 1);
        let _ = w.measure(100);
        let mut buf = SnapWriter::new();
        w.save_state(&mut buf);
        let bytes = buf.into_bytes();
        // A different program (different length) rejects the snapshot.
        let mut other = walker("mcf", 1);
        let mut r = SnapReader::new(&bytes);
        let err = other.load_state(&mut r).unwrap_err();
        assert_eq!(err.code, "E0018");
        // Truncated bytes reject too.
        let mut target = walker("gzip", 1);
        let mut r = SnapReader::new(&bytes[..bytes.len() / 2]);
        assert_eq!(target.load_state(&mut r).unwrap_err().code, "E0018");
    }

    #[test]
    fn mem_instructions_get_addresses_in_working_set() {
        let mut w = walker("mcf", 9);
        let ws = w.program().data_footprint();
        let mut seen_mem = 0;
        for _ in 0..50_000 {
            let d = w.next_inst();
            if let Some(m) = d.mem {
                seen_mem += 1;
                // All data lives in [data_base, data_base + ws + small region).
                let data_base = w.program().base() + 0x1000_0000;
                assert!(m.addr >= data_base, "addr {} below data base", m.addr);
                assert!(m.addr.raw() < data_base.raw() + ws + (1 << 14));
            }
        }
        assert!(seen_mem > 10_000, "only {seen_mem} memory instructions");
    }
}
