//! The paper's multithreaded workloads (Table 2).
//!
//! Workloads combine 2–8 benchmark clones and are classified by the
//! characteristics of the included benchmarks: high instruction-level
//! parallelism (**ILP**), bad memory behaviour (**MEM**), or a mix of both
//! (**MIX**). As in the paper, MEM workloads only exist for 2 and 4 threads
//! (SPECint2000 has few truly memory-bounded benchmarks).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use smt_isa::Addr;

use crate::builder::ProgramBuilder;
use crate::program::Program;
use crate::spec::BenchmarkProfile;

/// Cache key: everything that determines a program's contents —
/// benchmark name, base address, and the thread-mixed seed.
type ProgramKey = (&'static str, u64, u64);

/// Process-wide cache of built programs for [`Workload::programs_shared`].
/// Sweep harnesses build the same (workload, seed) pair for dozens of
/// cells; with the cache each distinct program is synthesised once and
/// every cell shares the `Arc`.
static PROGRAM_CACHE: Mutex<BTreeMap<ProgramKey, Arc<Program>>> = Mutex::new(BTreeMap::new());

/// Workload classification (Table 2 vocabulary).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorkloadClass {
    /// Only high-ILP benchmarks.
    Ilp,
    /// Only memory-bounded benchmarks.
    Mem,
    /// Mixed ILP and memory-bounded benchmarks.
    Mix,
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadClass::Ilp => write!(f, "ILP"),
            WorkloadClass::Mem => write!(f, "MEM"),
            WorkloadClass::Mix => write!(f, "MIX"),
        }
    }
}

/// A named multithreaded workload: an ordered list of benchmark clones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Workload {
    name: String,
    class: WorkloadClass,
    benchmarks: Vec<&'static str>,
}

/// Error building a workload's programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownBenchmarkError {
    name: String,
}

impl std::fmt::Display for UnknownBenchmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown benchmark name `{}`", self.name)
    }
}

impl std::error::Error for UnknownBenchmarkError {}

/// Per-thread address-space separation: threads' code/data regions never
/// overlap, as distinct processes' working sets never alias usefully.
const THREAD_SPACE: u64 = 0x4000_0000;

impl Workload {
    /// Creates a custom workload from benchmark names.
    ///
    /// # Errors
    ///
    /// Returns an error if any name is not one of the twelve SPECint2000
    /// clones.
    pub fn custom(
        name: impl Into<String>,
        class: WorkloadClass,
        benchmarks: &[&'static str],
    ) -> Result<Self, UnknownBenchmarkError> {
        for b in benchmarks {
            if BenchmarkProfile::by_name(b).is_none() {
                return Err(UnknownBenchmarkError {
                    name: (*b).to_string(),
                });
            }
        }
        Ok(Workload {
            name: name.into(),
            class,
            benchmarks: benchmarks.to_vec(),
        })
    }

    fn table2(name: &str, class: WorkloadClass, benchmarks: &[&'static str]) -> Self {
        // lint:allow(no-panic): table 2 names are compiled-in and valid
        Workload::custom(name, class, benchmarks).expect("table 2 names are valid")
    }

    /// `2_ILP`: eon, gcc.
    pub fn ilp2() -> Self {
        Self::table2("2_ILP", WorkloadClass::Ilp, &["eon", "gcc"])
    }

    /// `2_MEM`: mcf, twolf.
    pub fn mem2() -> Self {
        Self::table2("2_MEM", WorkloadClass::Mem, &["mcf", "twolf"])
    }

    /// `2_MIX`: gzip, twolf — the workload of Figures 2 and 4.
    pub fn mix2() -> Self {
        Self::table2("2_MIX", WorkloadClass::Mix, &["gzip", "twolf"])
    }

    /// `4_ILP`: eon, gcc, gzip, bzip2.
    pub fn ilp4() -> Self {
        Self::table2(
            "4_ILP",
            WorkloadClass::Ilp,
            &["eon", "gcc", "gzip", "bzip2"],
        )
    }

    /// `4_MEM`: mcf, twolf, vpr, perlbmk.
    pub fn mem4() -> Self {
        Self::table2(
            "4_MEM",
            WorkloadClass::Mem,
            &["mcf", "twolf", "vpr", "perlbmk"],
        )
    }

    /// `4_MIX`: gzip, twolf, bzip2, mcf.
    pub fn mix4() -> Self {
        Self::table2(
            "4_MIX",
            WorkloadClass::Mix,
            &["gzip", "twolf", "bzip2", "mcf"],
        )
    }

    /// `6_ILP`: eon, gcc, gzip, bzip2, crafty, vortex.
    pub fn ilp6() -> Self {
        Self::table2(
            "6_ILP",
            WorkloadClass::Ilp,
            &["eon", "gcc", "gzip", "bzip2", "crafty", "vortex"],
        )
    }

    /// `6_MIX`: gzip, twolf, bzip2, mcf, vpr, eon.
    pub fn mix6() -> Self {
        Self::table2(
            "6_MIX",
            WorkloadClass::Mix,
            &["gzip", "twolf", "bzip2", "mcf", "vpr", "eon"],
        )
    }

    /// `8_ILP`: eon, gcc, gzip, bzip2, crafty, vortex, gap, parser.
    pub fn ilp8() -> Self {
        Self::table2(
            "8_ILP",
            WorkloadClass::Ilp,
            &[
                "eon", "gcc", "gzip", "bzip2", "crafty", "vortex", "gap", "parser",
            ],
        )
    }

    /// `8_MIX`: gzip, twolf, bzip2, mcf, vpr, eon, gap, parser.
    pub fn mix8() -> Self {
        Self::table2(
            "8_MIX",
            WorkloadClass::Mix,
            &[
                "gzip", "twolf", "bzip2", "mcf", "vpr", "eon", "gap", "parser",
            ],
        )
    }

    /// All ten Table 2 workloads, in the paper's order.
    pub fn all_table2() -> Vec<Workload> {
        vec![
            Self::ilp2(),
            Self::mem2(),
            Self::mix2(),
            Self::ilp4(),
            Self::mem4(),
            Self::mix4(),
            Self::ilp6(),
            Self::mix6(),
            Self::ilp8(),
            Self::mix8(),
        ]
    }

    /// The ILP workloads of Figures 5 and 6.
    pub fn ilp_suite() -> Vec<Workload> {
        vec![Self::ilp2(), Self::ilp4(), Self::ilp6(), Self::ilp8()]
    }

    /// The memory-bounded workloads of Figures 7 and 8, in figure order.
    pub fn mem_suite() -> Vec<Workload> {
        vec![
            Self::mix2(),
            Self::mem2(),
            Self::mix4(),
            Self::mem4(),
            Self::mix6(),
            Self::mix8(),
        ]
    }

    /// Workload name (e.g. `"4_MIX"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workload class.
    pub fn class(&self) -> WorkloadClass {
        self.class
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.benchmarks.len()
    }

    /// The benchmark names, in thread order.
    pub fn benchmarks(&self) -> &[&'static str] {
        &self.benchmarks
    }

    /// Builds one synthetic program per thread, in disjoint address spaces.
    ///
    /// The same `seed` reproduces the same programs exactly; each thread's
    /// program additionally mixes in its thread index, so two instances of
    /// the same benchmark in one workload get distinct programs.
    ///
    /// # Errors
    ///
    /// Returns an error if a benchmark name is unknown (impossible for the
    /// built-in Table 2 workloads).
    pub fn programs(&self, seed: u64) -> Result<Vec<Program>, UnknownBenchmarkError> {
        self.benchmarks
            .iter()
            .enumerate()
            .map(|(t, name)| {
                let (profile, base, mixed) = self.thread_recipe(t, name, seed)?;
                Ok(ProgramBuilder::new(profile)
                    .base(Addr::new(base))
                    .seed(mixed)
                    .build())
            })
            .collect()
    }

    /// Like [`Workload::programs`], but serves each distinct program from a
    /// process-wide cache as a shared [`Arc`].
    ///
    /// Programs are immutable once built, so all consumers of the same
    /// (benchmark, thread slot, seed) triple — every sweep cell running
    /// this workload, in particular — share one allocation instead of
    /// re-synthesising and copying megabytes of instruction and behaviour
    /// tables per simulator. The cache is keyed by everything that
    /// determines the program bytes, so a hit is bit-identical to a fresh
    /// build.
    ///
    /// # Errors
    ///
    /// Returns an error if a benchmark name is unknown (impossible for the
    /// built-in Table 2 workloads).
    pub fn programs_shared(&self, seed: u64) -> Result<Vec<Arc<Program>>, UnknownBenchmarkError> {
        self.benchmarks
            .iter()
            .enumerate()
            .map(|(t, name)| {
                let (profile, base, mixed) = self.thread_recipe(t, name, seed)?;
                let mut cache = PROGRAM_CACHE.lock().expect("program cache poisoned"); // lint:allow(no-panic): a poisoned program cache is unrecoverable
                if let Some(p) = cache.get(&(*name, base, mixed)) {
                    return Ok(Arc::clone(p));
                }
                let p = Arc::new(
                    ProgramBuilder::new(profile)
                        .base(Addr::new(base))
                        .seed(mixed)
                        .build(),
                );
                cache.insert((*name, base, mixed), Arc::clone(&p));
                Ok(p)
            })
            .collect()
    }

    /// The (profile, base address, mixed seed) triple that fully determines
    /// thread `t`'s program.
    fn thread_recipe(
        &self,
        t: usize,
        name: &'static str,
        seed: u64,
    ) -> Result<(BenchmarkProfile, u64, u64), UnknownBenchmarkError> {
        let profile = BenchmarkProfile::by_name(name).ok_or_else(|| UnknownBenchmarkError {
            name: name.to_string(),
        })?;
        // Stagger bases by a non-power-of-two amount in addition to
        // the per-thread space: with pure power-of-two spacing every
        // thread's hot lines would map to the *same* cache sets
        // (page-coloring pathology a real OS's physical mapping
        // avoids), and 4+ threads would thrash the 2-way L1I forever.
        let stagger = t as u64 * 0x1_1040;
        Ok((
            profile,
            0x0040_0000 + t as u64 * THREAD_SPACE + stagger,
            seed ^ (t as u64).wrapping_mul(0x9e37_79b9),
        ))
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}]: {}",
            self.name,
            self.class,
            self.benchmarks.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let all = Workload::all_table2();
        assert_eq!(all.len(), 10);
        let w = Workload::mix2();
        assert_eq!(w.benchmarks(), ["gzip", "twolf"]);
        assert_eq!(w.num_threads(), 2);
        assert_eq!(w.class(), WorkloadClass::Mix);
        assert_eq!(
            Workload::mem4().benchmarks(),
            ["mcf", "twolf", "vpr", "perlbmk"]
        );
        assert_eq!(
            Workload::ilp8().benchmarks(),
            ["eon", "gcc", "gzip", "bzip2", "crafty", "vortex", "gap", "parser"]
        );
    }

    #[test]
    fn mem_workloads_only_for_2_and_4_threads() {
        for w in Workload::all_table2() {
            if w.class() == WorkloadClass::Mem {
                assert!(w.num_threads() <= 4, "{}", w.name());
            }
        }
    }

    #[test]
    fn programs_live_in_disjoint_address_spaces() {
        let progs = Workload::mix4().programs(1).unwrap();
        assert_eq!(progs.len(), 4);
        for (i, a) in progs.iter().enumerate() {
            for b in progs.iter().skip(i + 1) {
                let a_end = a.base().raw() + 0x1000_0000 + a.data_footprint();
                assert!(
                    a_end <= b.base().raw() || b.base().raw() + THREAD_SPACE <= a.base().raw(),
                    "address overlap between {} and {}",
                    a.name(),
                    b.name()
                );
            }
        }
    }

    #[test]
    fn same_benchmark_twice_gets_distinct_programs() {
        let w = Workload::custom("twin", WorkloadClass::Ilp, &["gzip", "gzip"]).unwrap();
        let progs = w.programs(7).unwrap();
        assert_eq!(progs[0].name(), progs[1].name());
        assert_ne!(progs[0].base(), progs[1].base());
        // Instruction streams differ because the seeds mix the thread index.
        assert_ne!(progs[0].len(), progs[1].len());
    }

    #[test]
    fn shared_programs_match_owned_builds_and_hit_the_cache() {
        let w = Workload::mix4();
        let owned = w.programs(1234).unwrap();
        let shared = w.programs_shared(1234).unwrap();
        assert_eq!(owned.len(), shared.len());
        for (o, s) in owned.iter().zip(shared.iter()) {
            assert_eq!(o, s.as_ref(), "cache served different program bytes");
        }
        // A second request serves the very same allocations.
        let again = w.programs_shared(1234).unwrap();
        for (a, b) in shared.iter().zip(again.iter()) {
            assert!(Arc::ptr_eq(a, b), "cache missed on identical recipe");
        }
        // A different seed is a different program.
        let other = w.programs_shared(1235).unwrap();
        assert!(!Arc::ptr_eq(&shared[0], &other[0]));
        assert_ne!(shared[0].as_ref(), other[0].as_ref());
    }

    #[test]
    fn custom_rejects_unknown_names() {
        let err = Workload::custom("bad", WorkloadClass::Ilp, &["gzip", "nosuch"]);
        assert!(err.is_err());
        let msg = err.unwrap_err().to_string();
        assert!(msg.contains("nosuch"));
    }

    #[test]
    fn display_is_informative() {
        let s = Workload::mix2().to_string();
        assert!(s.contains("2_MIX"));
        assert!(s.contains("gzip"));
        assert!(s.contains("MIX"));
    }
}
