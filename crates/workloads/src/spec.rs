//! SPECint2000 benchmark clones: per-benchmark calibration profiles.
//!
//! The paper (Table 1) characterizes its twelve SPECint2000 inputs chiefly by
//! average dynamic basic-block size; Table 2 then classifies benchmarks as
//! high-ILP or memory-bounded. A [`BenchmarkProfile`] captures the
//! distributional properties the evaluation actually exercises:
//!
//! * average basic-block size (→ how far a 1-prediction/cycle fetch engine
//!   can see, and how long FTB blocks / streams get);
//! * branch-behaviour mix (→ predictor accuracy and taken-branch rate);
//! * memory working-set size and pointer-chase fraction (→ ILP vs MEM
//!   thread quality, the load that "clogs" shared resources in §5.2);
//! * dependence density (→ exploitable ILP).

/// Memory-behaviour class of a benchmark clone (paper Table 2 vocabulary).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemClass {
    /// High instruction-level parallelism, cache-friendly.
    Ilp,
    /// Mildly memory-bounded (vpr, perlbmk in the paper's 4_MEM mix).
    MildMem,
    /// Strongly memory-bounded (mcf, twolf).
    Mem,
}

impl MemClass {
    /// Whether the class counts as memory-bounded for workload construction.
    pub fn is_mem(self) -> bool {
        !matches!(self, MemClass::Ilp)
    }
}

/// Calibration profile for one synthetic benchmark clone.
///
/// Passive configuration record (public fields by design); consumed by
/// [`crate::builder::ProgramBuilder`].
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPECint2000 short name).
    pub name: &'static str,
    /// Target average dynamic basic-block size, from Table 1.
    pub avg_bb_size: f64,
    /// Memory class.
    pub mem_class: MemClass,
    /// Number of callee functions (besides the driver).
    pub num_funcs: u32,
    /// Basic blocks ("runs") per function, before loop expansion.
    pub runs_per_func: u32,
    /// Fraction of conditional branches that are loop back-edges.
    pub loop_frac: f64,
    /// Fraction of conditional branches with a repeating pattern
    /// (history-predictable).
    pub pattern_frac: f64,
    /// Fraction of conditional branches whose outcome is a function of the
    /// recent path history (what global-history predictors exploit).
    pub corr_frac: f64,
    /// Remaining conditional branches are Bernoulli; their taken-probability
    /// is drawn from this range and mirrored around 0.5 half the time.
    pub bias_range: (f64, f64),
    /// Fraction of Bernoulli branches that are *hard* (bias near 0.5);
    /// controls the floor of predictor accuracy.
    pub hard_frac: f64,
    /// Loop trip counts are drawn from this range.
    pub loop_period: (u32, u32),
    /// Fraction of block-ending branches that are calls.
    pub call_frac: f64,
    /// Fraction of block-ending branches that are indirect jumps.
    pub indirect_frac: f64,
    /// Data working-set size in bytes.
    pub working_set: u64,
    /// Fraction of loads in a pointer-chase chain (serialized misses).
    pub chase_frac: f64,
    /// Fraction of loads/stores with strided (cache-friendly) access; the
    /// rest are uniform over the working set.
    pub stride_frac: f64,
    /// Instruction-mix fractions within straight-line code, in order:
    /// loads, stores, fp, int multiplies (rest are 1-cycle int ALU).
    pub mix: InstMix,
    /// Number of independent dependence chains in straight-line code;
    /// larger means more ILP.
    pub dep_chains: u32,
}

/// Instruction-mix fractions for straight-line code.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of floating-point operations.
    pub fp: f64,
    /// Fraction of integer multiplies.
    pub mul: f64,
}

impl InstMix {
    /// Typical SPECint mix.
    pub const INT: InstMix = InstMix {
        load: 0.24,
        store: 0.10,
        fp: 0.01,
        mul: 0.03,
    };
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

impl BenchmarkProfile {
    /// Profile of the named SPECint2000 benchmark clone.
    ///
    /// Accepts the twelve SPECint2000 short names used by the paper
    /// (`gzip`, `vpr`, `gcc`, `mcf`, `crafty`, `parser`, `eon`, `perlbmk`,
    /// `gap`, `vortex`, `bzip2`, `twolf`).
    ///
    /// # Errors
    ///
    /// Returns `None` for an unknown name.
    pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
        Some(match name {
            "gzip" => Self::gzip(),
            "vpr" => Self::vpr(),
            "gcc" => Self::gcc(),
            "mcf" => Self::mcf(),
            "crafty" => Self::crafty(),
            "parser" => Self::parser(),
            "eon" => Self::eon(),
            "perlbmk" => Self::perlbmk(),
            "gap" => Self::gap(),
            "vortex" => Self::vortex(),
            "bzip2" => Self::bzip2(),
            "twolf" => Self::twolf(),
            _ => return None,
        })
    }

    /// All twelve profiles, in Table 1 order.
    pub fn all() -> Vec<BenchmarkProfile> {
        vec![
            Self::gzip(),
            Self::vpr(),
            Self::gcc(),
            Self::mcf(),
            Self::crafty(),
            Self::parser(),
            Self::eon(),
            Self::perlbmk(),
            Self::gap(),
            Self::vortex(),
            Self::bzip2(),
            Self::twolf(),
        ]
    }

    fn base(name: &'static str, avg_bb: f64, mem_class: MemClass) -> BenchmarkProfile {
        BenchmarkProfile {
            name,
            avg_bb_size: avg_bb,
            mem_class,
            num_funcs: 16,
            runs_per_func: 28,
            loop_frac: 0.32,
            pattern_frac: 0.03,
            corr_frac: 0.08,
            bias_range: (0.03, 0.18),
            hard_frac: 0.015,
            loop_period: (6, 24),
            call_frac: 0.08,
            indirect_frac: 0.015,
            working_set: 48 * KB,
            chase_frac: 0.0,
            stride_frac: 0.75,
            mix: InstMix::INT,
            dep_chains: 12,
        }
    }

    /// 164.gzip — compression; high ILP, very predictable, tiny working set.
    pub fn gzip() -> BenchmarkProfile {
        BenchmarkProfile {
            pattern_frac: 0.03,
            hard_frac: 0.02,
            dep_chains: 16,
            working_set: 40 * KB,
            ..Self::base("gzip", 11.02, MemClass::Ilp)
        }
    }

    /// 175.vpr — place & route; mildly memory-bounded, harder branches.
    pub fn vpr() -> BenchmarkProfile {
        BenchmarkProfile {
            hard_frac: 0.02,
            working_set: 3 * MB,
            chase_frac: 0.10,
            stride_frac: 0.45,
            dep_chains: 8,
            ..Self::base("vpr", 9.68, MemClass::MildMem)
        }
    }

    /// 176.gcc — compiler; short blocks, big code footprint, many calls and
    /// indirect jumps.
    pub fn gcc() -> BenchmarkProfile {
        BenchmarkProfile {
            num_funcs: 28,
            runs_per_func: 26,
            call_frac: 0.14,
            indirect_frac: 0.05,
            hard_frac: 0.035,
            working_set: 160 * KB,
            stride_frac: 0.70,
            dep_chains: 10,
            ..Self::base("gcc", 5.76, MemClass::Ilp)
        }
    }

    /// 181.mcf — network simplex; tiny blocks, huge pointer-chased working
    /// set. The canonical memory-bounded thread.
    pub fn mcf() -> BenchmarkProfile {
        BenchmarkProfile {
            hard_frac: 0.03,
            working_set: 32 * MB,
            chase_frac: 0.25,
            stride_frac: 0.15,
            dep_chains: 4,
            mix: InstMix {
                load: 0.30,
                store: 0.09,
                fp: 0.0,
                mul: 0.01,
            },
            ..Self::base("mcf", 3.92, MemClass::Mem)
        }
    }

    /// 186.crafty — chess; high ILP, long blocks, predictable.
    pub fn crafty() -> BenchmarkProfile {
        BenchmarkProfile {
            hard_frac: 0.025,
            dep_chains: 16,
            working_set: 64 * KB,
            ..Self::base("crafty", 9.24, MemClass::Ilp)
        }
    }

    /// 197.parser — link parser; shortish blocks, moderate memory.
    pub fn parser() -> BenchmarkProfile {
        BenchmarkProfile {
            hard_frac: 0.025,
            working_set: 128 * KB,
            stride_frac: 0.70,
            dep_chains: 8,
            ..Self::base("parser", 6.37, MemClass::Ilp)
        }
    }

    /// 252.eon — C++ ray tracer; some FP, deep call chains, high ILP.
    pub fn eon() -> BenchmarkProfile {
        BenchmarkProfile {
            call_frac: 0.16,
            indirect_frac: 0.04,
            hard_frac: 0.02,
            dep_chains: 16,
            working_set: 32 * KB,
            mix: InstMix {
                load: 0.24,
                store: 0.12,
                fp: 0.14,
                mul: 0.02,
            },
            ..Self::base("eon", 8.73, MemClass::Ilp)
        }
    }

    /// 253.perlbmk — interpreter; indirect-branch heavy, mildly
    /// memory-bounded (grouped with MEM in the paper's 4_MEM workload).
    pub fn perlbmk() -> BenchmarkProfile {
        BenchmarkProfile {
            num_funcs: 18,
            call_frac: 0.12,
            indirect_frac: 0.06,
            hard_frac: 0.025,
            working_set: 2 * MB,
            chase_frac: 0.12,
            stride_frac: 0.45,
            ..Self::base("perlbmk", 10.06, MemClass::MildMem)
        }
    }

    /// 254.gap — group theory; high ILP.
    pub fn gap() -> BenchmarkProfile {
        BenchmarkProfile {
            hard_frac: 0.025,
            dep_chains: 14,
            working_set: 96 * KB,
            ..Self::base("gap", 9.16, MemClass::Ilp)
        }
    }

    /// 255.vortex — OO database; call-heavy, large code, high ILP.
    pub fn vortex() -> BenchmarkProfile {
        BenchmarkProfile {
            num_funcs: 22,
            call_frac: 0.15,
            hard_frac: 0.02,
            working_set: 160 * KB,
            dep_chains: 8,
            ..Self::base("vortex", 6.50, MemClass::Ilp)
        }
    }

    /// 256.bzip2 — compression; high ILP, predictable, strided.
    pub fn bzip2() -> BenchmarkProfile {
        BenchmarkProfile {
            pattern_frac: 0.03,
            hard_frac: 0.02,
            dep_chains: 16,
            working_set: 128 * KB,
            stride_frac: 0.85,
            ..Self::base("bzip2", 10.02, MemClass::Ilp)
        }
    }

    /// 300.twolf — place & route; strongly memory-bounded, hard branches.
    pub fn twolf() -> BenchmarkProfile {
        BenchmarkProfile {
            hard_frac: 0.025,
            working_set: 12 * MB,
            chase_frac: 0.20,
            stride_frac: 0.20,
            dep_chains: 5,
            mix: InstMix {
                load: 0.27,
                store: 0.10,
                fp: 0.01,
                mul: 0.02,
            },
            ..Self::base("twolf", 8.00, MemClass::Mem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twelve_profiles_exist_in_table1_order() {
        let all = BenchmarkProfile::all();
        let names: Vec<&str> = all.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex",
                "bzip2", "twolf"
            ]
        );
    }

    #[test]
    fn by_name_round_trips() {
        for p in BenchmarkProfile::all() {
            let q = BenchmarkProfile::by_name(p.name).unwrap();
            assert_eq!(p, q);
        }
        assert!(BenchmarkProfile::by_name("nosuch").is_none());
    }

    #[test]
    fn table1_bb_sizes_match_paper() {
        let expect = [
            ("gzip", 11.02),
            ("vpr", 9.68),
            ("gcc", 5.76),
            ("mcf", 3.92),
            ("crafty", 9.24),
            ("parser", 6.37),
            ("eon", 8.73),
            ("perlbmk", 10.06),
            ("gap", 9.16),
            ("vortex", 6.50),
            ("bzip2", 10.02),
            ("twolf", 8.00),
        ];
        for (name, bb) in expect {
            let p = BenchmarkProfile::by_name(name).unwrap();
            assert!((p.avg_bb_size - bb).abs() < 1e-9, "{name}");
        }
    }

    #[test]
    fn mem_classes_match_table2_grouping() {
        assert!(BenchmarkProfile::mcf().mem_class.is_mem());
        assert!(BenchmarkProfile::twolf().mem_class.is_mem());
        assert!(BenchmarkProfile::vpr().mem_class.is_mem());
        assert!(BenchmarkProfile::perlbmk().mem_class.is_mem());
        for ilp in [
            "gzip", "gcc", "crafty", "parser", "eon", "gap", "vortex", "bzip2",
        ] {
            assert!(
                !BenchmarkProfile::by_name(ilp).unwrap().mem_class.is_mem(),
                "{ilp} should be ILP"
            );
        }
    }

    #[test]
    fn memory_bound_profiles_exceed_l2() {
        // L2 is 1 MB (Table 3); strongly memory-bound clones must overflow it.
        assert!(BenchmarkProfile::mcf().working_set > 1024 * 1024);
        assert!(BenchmarkProfile::twolf().working_set > 1024 * 1024);
        // ILP clones fit in L2.
        assert!(BenchmarkProfile::gzip().working_set <= 1024 * 1024);
        assert!(BenchmarkProfile::eon().working_set <= 1024 * 1024);
    }

    #[test]
    fn fractions_are_probabilities() {
        for p in BenchmarkProfile::all() {
            for f in [
                p.loop_frac,
                p.pattern_frac,
                p.hard_frac,
                p.call_frac,
                p.indirect_frac,
                p.chase_frac,
                p.stride_frac,
                p.mix.load,
                p.mix.store,
                p.mix.fp,
                p.mix.mul,
            ] {
                assert!((0.0..=1.0).contains(&f), "{}: fraction {f}", p.name);
            }
            assert!(p.loop_frac + p.pattern_frac <= 1.0, "{}", p.name);
            assert!(
                p.mix.load + p.mix.store + p.mix.fp + p.mix.mul < 1.0,
                "{}",
                p.name
            );
            assert!(p.loop_period.0 >= 2 && p.loop_period.1 > p.loop_period.0);
        }
    }
}
