//! Miss status holding registers: bounded outstanding-miss tracking.

use smt_isa::{snap_mismatch, Addr, Cycle, Diagnostic, Snap, SnapReader, SnapWriter};

/// A file of MSHRs for one cache.
///
/// Each entry tracks one outstanding line fill and the cycle it completes.
/// Accesses to a line already pending **merge** into the existing entry
/// (hit-under-miss); a full file is a structural hazard — the requester must
/// retry. The paper requires a non-blocking I-cache with "an MSHR for each
/// thread"; the simulator gives each cache a small file and lets the caller
/// partition it.
#[derive(Clone, Debug)]
pub struct MshrFile {
    slots: Vec<(Addr, Cycle)>, // (line address, ready cycle)
    capacity: usize,
    line_bytes: u64,
    merges: u64,
    allocs: u64,
    full_stalls: u64,
}

/// Result of an MSHR allocation attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated.
    Allocated,
    /// The line was already pending; the access merged. The payload is the
    /// cycle the pending fill completes.
    Merged(Cycle),
    /// The file is full; the access must retry later.
    Full,
}

impl MshrFile {
    /// Creates a file with `capacity` entries for lines of `line_bytes`.
    ///
    /// # Errors
    ///
    /// `E0010` if `capacity` is zero or `line_bytes` is not a power of two.
    pub fn new(capacity: usize, line_bytes: u64) -> Result<Self, Diagnostic> {
        if capacity == 0 {
            return Err(Diagnostic::error(
                "E0010",
                "mshrs",
                "MSHR capacity must be positive",
                "the paper requires an I-MSHR per thread and 16 D-MSHRs",
            ));
        }
        if !line_bytes.is_power_of_two() {
            return Err(Diagnostic::error(
                "E0010",
                "mshrs.line_bytes",
                format!("line size must be a power of two (got {line_bytes})"),
                "use the 64 B line size of Table 3",
            ));
        }
        Ok(MshrFile {
            slots: Vec::with_capacity(capacity),
            capacity,
            line_bytes,
            merges: 0,
            allocs: 0,
            full_stalls: 0,
        })
    }

    /// Number of outstanding misses at `now` (expired entries are retired).
    pub fn outstanding(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.slots.len()
    }

    /// Retires entries whose fills completed at or before `now`.
    pub fn retire(&mut self, now: Cycle) {
        self.slots.retain(|&(_, ready)| ready > now);
    }

    /// Whether the line containing `addr` has a fill pending at `now`;
    /// returns its completion cycle.
    pub fn pending(&mut self, addr: Addr, now: Cycle) -> Option<Cycle> {
        self.retire(now);
        let line = addr.line(self.line_bytes);
        self.slots
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|&(_, r)| r)
    }

    /// Tries to track a miss of `addr`'s line completing at `ready`.
    pub fn allocate(&mut self, addr: Addr, now: Cycle, ready: Cycle) -> MshrOutcome {
        self.retire(now);
        let line = addr.line(self.line_bytes);
        if let Some(&(_, r)) = self.slots.iter().find(|&&(l, _)| l == line) {
            self.merges += 1;
            return MshrOutcome::Merged(r);
        }
        if self.slots.len() >= self.capacity {
            self.full_stalls += 1;
            return MshrOutcome::Full;
        }
        self.slots.push((line, ready));
        self.allocs += 1;
        MshrOutcome::Allocated
    }

    /// Earliest fill-completion cycle strictly after `now`, if any fill is
    /// still outstanding. Non-mutating (expired entries are skipped, not
    /// retired): the event-driven scheduler polls this between cycles.
    pub fn next_ready_after(&self, now: Cycle) -> Option<Cycle> {
        self.slots
            .iter()
            .map(|&(_, ready)| ready)
            .filter(|&ready| ready > now)
            .min()
    }

    /// `(allocations, merges, full-stalls)` counts.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.allocs, self.merges, self.full_stalls)
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Serializes the outstanding-miss slots and counters.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.slots.len());
        for (line, ready) in &self.slots {
            line.save(w);
            w.u64(*ready);
        }
        w.u64(self.merges);
        w.u64(self.allocs);
        w.u64(self.full_stalls);
    }

    /// Restores state saved by [`MshrFile::save_state`] in place, preserving
    /// the file's capacity.
    ///
    /// # Errors
    ///
    /// `E0018` if the stored slot count exceeds this file's capacity or the
    /// byte stream is malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        let n = r.usize()?;
        if n > self.capacity {
            return Err(snap_mismatch(
                "mshr occupancy",
                format!(
                    "snapshot holds {n} slots but the file has {}",
                    self.capacity
                ),
            ));
        }
        self.slots.clear();
        for _ in 0..n {
            let line = Addr::load(r)?;
            let ready = r.u64()?;
            self.slots.push((line, ready));
        }
        self.merges = r.u64()?;
        self.allocs = r.u64()?;
        self.full_stalls = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge_same_line() {
        let mut m = MshrFile::new(4, 64).unwrap();
        assert_eq!(
            m.allocate(Addr::new(0x1000), 0, 100),
            MshrOutcome::Allocated
        );
        assert_eq!(
            m.allocate(Addr::new(0x1020), 5, 100),
            MshrOutcome::Merged(100),
            "same line must merge"
        );
        assert_eq!(m.outstanding(5), 1);
    }

    #[test]
    fn full_file_stalls() {
        let mut m = MshrFile::new(2, 64).unwrap();
        m.allocate(Addr::new(0x0), 0, 50);
        m.allocate(Addr::new(0x40), 0, 50);
        assert_eq!(m.allocate(Addr::new(0x80), 0, 50), MshrOutcome::Full);
        let (allocs, merges, stalls) = m.stats();
        assert_eq!((allocs, merges, stalls), (2, 0, 1));
    }

    #[test]
    fn entries_retire_when_fill_completes() {
        let mut m = MshrFile::new(1, 64).unwrap();
        m.allocate(Addr::new(0x0), 0, 10);
        assert_eq!(m.allocate(Addr::new(0x40), 5, 60), MshrOutcome::Full);
        // At cycle 10 the first fill is done: slot frees.
        assert_eq!(m.allocate(Addr::new(0x40), 10, 60), MshrOutcome::Allocated);
        assert_eq!(m.outstanding(10), 1);
        assert_eq!(m.outstanding(60), 0);
    }

    #[test]
    fn next_ready_after_reports_earliest_live_fill() {
        let mut m = MshrFile::new(4, 64).unwrap();
        assert_eq!(m.next_ready_after(0), None);
        m.allocate(Addr::new(0x000), 0, 90);
        m.allocate(Addr::new(0x040), 0, 40);
        assert_eq!(m.next_ready_after(0), Some(40));
        assert_eq!(m.next_ready_after(40), Some(90), "expired fills skipped");
        assert_eq!(m.next_ready_after(90), None);
    }

    #[test]
    fn pending_reports_completion_cycle() {
        let mut m = MshrFile::new(2, 64).unwrap();
        m.allocate(Addr::new(0x100), 0, 42);
        assert_eq!(m.pending(Addr::new(0x13c), 1), Some(42));
        assert_eq!(m.pending(Addr::new(0x140), 1), None);
        assert_eq!(m.pending(Addr::new(0x100), 42), None, "retired at ready");
    }

    #[test]
    fn zero_capacity_rejected() {
        let d = MshrFile::new(0, 64).unwrap_err();
        assert_eq!(d.code, "E0010");
        assert_eq!(MshrFile::new(4, 48).unwrap_err().code, "E0010");
    }
}
