//! Translation lookaside buffers.

use smt_isa::{snap_mismatch, Addr, Diagnostic, SnapReader, SnapWriter};

/// Configuration of one TLB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of (fully-associative) entries.
    pub entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Page-walk penalty in cycles, charged per miss.
    pub miss_penalty: u64,
}

impl TlbConfig {
    /// Table 3's 48-entry instruction TLB (8 KB pages, 30-cycle walk).
    pub fn itlb_hpca2004() -> Self {
        TlbConfig {
            entries: 48,
            page_bytes: 8192,
            miss_penalty: 30,
        }
    }

    /// Table 3's 128-entry data TLB (8 KB pages, 30-cycle walk).
    pub fn dtlb_hpca2004() -> Self {
        TlbConfig {
            entries: 128,
            page_bytes: 8192,
            miss_penalty: 30,
        }
    }
}

/// A fully-associative, LRU TLB over fixed-size pages.
///
/// Table 3 gives a 48-entry I-TLB and a 128-entry D-TLB; misses charge a
/// fixed page-walk penalty.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page number, lru)
    capacity: usize,
    page_bytes: u64,
    miss_penalty: u64,
    tick: u64,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB from a configuration.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tlb::new`] (`E0011`).
    pub fn from_config(cfg: &TlbConfig) -> Result<Self, Diagnostic> {
        Tlb::new(cfg.entries, cfg.page_bytes, cfg.miss_penalty)
    }

    /// Creates a TLB with `capacity` entries over `page_bytes` pages,
    /// charging `miss_penalty` cycles per miss.
    ///
    /// # Errors
    ///
    /// `E0011` if `capacity` is zero or `page_bytes` is not a power of two.
    pub fn new(capacity: usize, page_bytes: u64, miss_penalty: u64) -> Result<Self, Diagnostic> {
        if capacity == 0 {
            return Err(Diagnostic::error(
                "E0011",
                "tlb.entries",
                "TLB capacity must be positive",
                "Table 3 uses 48 I-TLB / 128 D-TLB entries",
            ));
        }
        if !page_bytes.is_power_of_two() {
            return Err(Diagnostic::error(
                "E0011",
                "tlb.page_bytes",
                format!("page size must be a power of two (got {page_bytes})"),
                "the paper uses 8 KB pages",
            ));
        }
        Ok(Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            page_bytes,
            miss_penalty,
            tick: 0,
            accesses: 0,
            misses: 0,
        })
    }

    /// The paper's 48-entry instruction TLB (8 KB pages, 30-cycle walk).
    pub fn itlb_hpca2004() -> Self {
        // lint:allow(no-panic): preset geometry is valid by construction
        Tlb::from_config(&TlbConfig::itlb_hpca2004()).expect("preset geometry is valid")
    }

    /// The paper's 128-entry data TLB (8 KB pages, 30-cycle walk).
    pub fn dtlb_hpca2004() -> Self {
        // lint:allow(no-panic): preset geometry is valid by construction
        Tlb::from_config(&TlbConfig::dtlb_hpca2004()).expect("preset geometry is valid")
    }

    /// Translates `addr`, returning the added latency (0 on a hit, the walk
    /// penalty on a miss). The missing page is filled.
    pub fn access(&mut self, addr: Addr) -> u64 {
        self.accesses += 1;
        self.tick += 1;
        let tick = self.tick;
        let page = addr.raw() / self.page_bytes;
        // `entries` stays sorted by page number, so the common case — a hit
        // — is a binary search instead of a scan of all 48/128 ways. Entry
        // order carries no semantics: hit/miss and the LRU victim are
        // functions of the (page, tick) contents alone (ticks are unique),
        // so the layout is free to serve lookup speed.
        match self.entries.binary_search_by_key(&page, |&(p, _)| p) {
            Ok(i) => {
                self.entries[i].1 = tick;
                0
            }
            Err(mut pos) => {
                self.misses += 1;
                if self.entries.len() >= self.capacity {
                    let lru = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, l))| *l)
                        .map(|(i, _)| i)
                        .expect("nonempty"); // lint:allow(no-panic): entries checked non-empty before LRU eviction
                    self.entries.remove(lru);
                    if lru < pos {
                        pos -= 1;
                    }
                }
                self.entries.insert(pos, (page, tick));
                self.miss_penalty
            }
        }
    }

    /// `(accesses, misses)` counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }

    /// Serializes the resident pages, LRU tick and counters.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.entries.len());
        for (page, lru) in &self.entries {
            w.u64(*page);
            w.u64(*lru);
        }
        w.u64(self.tick);
        w.u64(self.accesses);
        w.u64(self.misses);
    }

    /// Restores state saved by [`Tlb::save_state`] in place, preserving the
    /// TLB's capacity.
    ///
    /// # Errors
    ///
    /// `E0018` if the stored entry count exceeds this TLB's capacity or the
    /// byte stream is malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        let n = r.usize()?;
        if n > self.capacity {
            return Err(snap_mismatch(
                "tlb occupancy",
                format!(
                    "snapshot holds {n} entries but the TLB has {}",
                    self.capacity
                ),
            ));
        }
        self.entries.clear();
        for _ in 0..n {
            let page = r.u64()?;
            let lru = r.u64()?;
            self.entries.push((page, lru));
        }
        self.tick = r.u64()?;
        self.accesses = r.u64()?;
        self.misses = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4, 8192, 30).unwrap();
        assert_eq!(t.access(Addr::new(0x1_0000)), 30);
        assert_eq!(t.access(Addr::new(0x1_1fff)), 0, "same page hits");
        assert_eq!(t.access(Addr::new(0x1_2000)), 30, "next page misses");
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 8192, 30).unwrap();
        t.access(Addr::new(0x0000)); // page 0
        t.access(Addr::new(0x2000)); // page 1
        t.access(Addr::new(0x0000)); // touch page 0 → page 1 is LRU
        t.access(Addr::new(0x4000)); // page 2 evicts page 1
        assert_eq!(t.access(Addr::new(0x0000)), 0);
        assert_eq!(t.access(Addr::new(0x2000)), 30);
    }

    #[test]
    fn huge_working_set_thrashes() {
        let mut t = Tlb::new(16, 8192, 30).unwrap();
        for i in 0..64u64 {
            t.access(Addr::new(i * 8192));
        }
        for i in 0..64u64 {
            assert_eq!(t.access(Addr::new(i * 8192)), 30);
        }
        let (acc, miss) = t.stats();
        assert_eq!(acc, 128);
        assert_eq!(miss, 128);
    }

    #[test]
    fn table3_capacities() {
        let mut i = Tlb::itlb_hpca2004();
        let mut d = Tlb::dtlb_hpca2004();
        for n in 0..48u64 {
            i.access(Addr::new(n * 8192));
        }
        for n in 0..48u64 {
            assert_eq!(i.access(Addr::new(n * 8192)), 0, "48 pages fit the ITLB");
        }
        for n in 0..128u64 {
            d.access(Addr::new(n * 8192));
        }
        for n in 0..128u64 {
            assert_eq!(d.access(Addr::new(n * 8192)), 0, "128 pages fit the DTLB");
        }
    }
}
