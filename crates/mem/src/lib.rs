//! # smt-mem — the memory hierarchy of Table 3
//!
//! Timing models for the caches, TLBs and main memory the HPCA 2004
//! simulator uses:
//!
//! * [`Cache`] — set-associative tag arrays with LRU, banking and dirty
//!   eviction (L1I/L1D: 32 KB, 2-way, 8 banks; L2: 1 MB, 2-way, 10 cycles);
//! * [`MshrFile`] — bounded outstanding-miss tracking with hit-under-miss
//!   merging (the paper's non-blocking caches, "an MSHR for each thread");
//! * [`Tlb`] — 48-entry I-TLB / 128-entry D-TLB;
//! * [`MemoryHierarchy`] — the assembled hierarchy with a 100-cycle main
//!   memory.
//!
//! # Example
//!
//! ```
//! use smt_mem::{FetchOutcome, MemoryHierarchy};
//! use smt_isa::Addr;
//!
//! let mut mem = MemoryHierarchy::hpca2004(2);
//! let pc = Addr::new(0x40_0000);
//! assert!(matches!(mem.fetch(pc, 0), FetchOutcome::Miss { .. }));
//! assert_eq!(mem.fetch(pc, 500), FetchOutcome::Hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod mshr;
mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{DataOutcome, FetchOutcome, MemoryConfig, MemoryHierarchy};
pub use mshr::{MshrFile, MshrOutcome};
pub use tlb::{Tlb, TlbConfig};
