//! The full memory hierarchy of Table 3: split 32 KB L1s, unified 1 MB L2,
//! 100-cycle main memory, TLBs and per-cache MSHR files.

use smt_isa::{Addr, Cycle, Diagnostic, SnapReader, SnapWriter};

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::mshr::{MshrFile, MshrOutcome};
use crate::tlb::{Tlb, TlbConfig};

/// Configuration of the whole hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles (Table 3: 100).
    pub memory_latency: u64,
    /// MSHR entries on the instruction side (the paper: one per thread).
    pub i_mshrs: usize,
    /// MSHR entries on the data side.
    pub d_mshrs: usize,
    /// Instruction TLB geometry.
    pub itlb: TlbConfig,
    /// Data TLB geometry.
    pub dtlb: TlbConfig,
}

impl MemoryConfig {
    /// The paper's configuration for `threads` hardware contexts.
    pub fn hpca2004(threads: usize) -> Self {
        MemoryConfig {
            l1i: CacheConfig::l1i_hpca2004(),
            l1d: CacheConfig::l1d_hpca2004(),
            l2: CacheConfig::l2_hpca2004(),
            memory_latency: 100,
            i_mshrs: threads.max(1),
            d_mshrs: 16,
            itlb: TlbConfig::itlb_hpca2004(),
            dtlb: TlbConfig::dtlb_hpca2004(),
        }
    }
}

/// Outcome of an instruction-fetch access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchOutcome {
    /// The line is in the L1I; fetch proceeds this cycle.
    Hit,
    /// The line is being filled; fetch for this thread can resume at the
    /// given cycle.
    Miss {
        /// Cycle at which the line becomes available.
        ready: Cycle,
    },
    /// No MSHR available; retry next cycle.
    Stall,
}

/// Outcome of a data access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataOutcome {
    /// Extra latency beyond the L1 pipeline (0 on an L1 hit).
    Done {
        /// Cycle at which the datum is available.
        ready: Cycle,
    },
    /// No MSHR available; replay the access later.
    Stall,
}

/// The memory hierarchy timing model.
///
/// Fills are performed eagerly while the returned latencies carry the timing
/// (the standard trace-simulator simplification); MSHR files bound the
/// number of outstanding misses and provide hit-under-miss merging.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    imshr: MshrFile,
    dmshr: MshrFile,
    itlb: Tlb,
    dtlb: Tlb,
    memory_latency: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a configuration.
    ///
    /// # Errors
    ///
    /// Propagates the first structural problem found in any component:
    /// `E0009` (cache geometry), `E0010` (MSHR file), `E0011` (TLB).
    pub fn new(cfg: MemoryConfig) -> Result<Self, Diagnostic> {
        let line = cfg.l1i.line_bytes;
        let dline = cfg.l1d.line_bytes;
        Ok(MemoryHierarchy {
            imshr: MshrFile::new(cfg.i_mshrs, line).map_err(|d| d.in_field("mem.i_mshrs"))?,
            dmshr: MshrFile::new(cfg.d_mshrs, dline).map_err(|d| d.in_field("mem.d_mshrs"))?,
            l1i: Cache::new(cfg.l1i)?,
            l1d: Cache::new(cfg.l1d)?,
            l2: Cache::new(cfg.l2)?,
            itlb: Tlb::from_config(&cfg.itlb).map_err(|d| d.in_field("mem.itlb"))?,
            dtlb: Tlb::from_config(&cfg.dtlb).map_err(|d| d.in_field("mem.dtlb"))?,
            memory_latency: cfg.memory_latency,
        })
    }

    /// The paper's hierarchy for `threads` contexts.
    pub fn hpca2004(threads: usize) -> Self {
        // lint:allow(no-panic): preset geometry is valid by construction
        MemoryHierarchy::new(MemoryConfig::hpca2004(threads)).expect("preset geometry is valid")
    }

    /// Latency of an L2-and-beyond access for a line, filling as it goes.
    fn l2_and_beyond(&mut self, addr: Addr, write: bool) -> u64 {
        if self.l2.access(addr, write) {
            self.l2.config().hit_latency
        } else {
            let lat = self.l2.config().hit_latency + self.memory_latency;
            self.l2.fill(addr, write);
            lat
        }
    }

    /// An instruction fetch of the line containing `pc` at cycle `now`.
    pub fn fetch(&mut self, pc: Addr, now: Cycle) -> FetchOutcome {
        // A line whose fill is still in flight was already (eagerly) filled
        // into the tags; the MSHR check must come first so the access merges
        // instead of hitting early.
        if let Some(ready) = self.imshr.pending(pc, now) {
            return FetchOutcome::Miss { ready };
        }
        if self.l1i.access(pc, false) {
            return FetchOutcome::Hit;
        }
        let tlb_penalty = self.itlb.access(pc);
        let lat = 1 + tlb_penalty + self.l2_and_beyond(pc, false);
        let ready = now + lat;
        match self.imshr.allocate(pc, now, ready) {
            MshrOutcome::Full => FetchOutcome::Stall,
            MshrOutcome::Merged(r) => FetchOutcome::Miss { ready: r },
            MshrOutcome::Allocated => {
                self.l1i.fill(pc, false);
                FetchOutcome::Miss { ready }
            }
        }
    }

    /// A data load of `addr` issued at cycle `now`.
    pub fn load(&mut self, addr: Addr, now: Cycle) -> DataOutcome {
        let tlb_penalty = self.dtlb.access(addr);
        // In-flight lines were eagerly filled; merge before the tag lookup.
        if let Some(ready) = self.dmshr.pending(addr, now) {
            return DataOutcome::Done {
                ready: ready + tlb_penalty,
            };
        }
        if self.l1d.access(addr, false) {
            return DataOutcome::Done {
                ready: now + tlb_penalty,
            };
        }
        let lat = 1 + tlb_penalty + self.l2_and_beyond(addr, false);
        let ready = now + lat;
        match self.dmshr.allocate(addr, now, ready) {
            MshrOutcome::Full => DataOutcome::Stall,
            MshrOutcome::Merged(r) => DataOutcome::Done { ready: r },
            MshrOutcome::Allocated => {
                self.l1d.fill(addr, false);
                DataOutcome::Done { ready }
            }
        }
    }

    /// A data store of `addr` performed at commit at cycle `now`.
    ///
    /// Stores retire through a store buffer and never stall commit; misses
    /// write-allocate and occupy a data MSHR if one is free (a full file
    /// just delays the fill invisibly, as a real store buffer would).
    pub fn store(&mut self, addr: Addr, now: Cycle) {
        let tlb_penalty = self.dtlb.access(addr);
        if self.l1d.access(addr, true) {
            return;
        }
        let lat = 1 + tlb_penalty + self.l2_and_beyond(addr, true);
        let _ = self.dmshr.allocate(addr, now, now + lat);
        self.l1d.fill(addr, true);
    }

    /// Number of outstanding instruction misses at `now`.
    pub fn i_misses_outstanding(&mut self, now: Cycle) -> usize {
        self.imshr.outstanding(now)
    }

    /// The hierarchy's event horizon: the earliest future cycle at which
    /// its own state changes without an access reaching it — the next MSHR
    /// fill completion on either side. Non-mutating; the event-driven
    /// scheduler bounds its skips by this so a fill return (which frees an
    /// MSHR slot and unblocks retries) is never jumped over.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        [
            self.imshr.next_ready_after(now),
            self.dmshr.next_ready_after(now),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// `(L1I, L1D, L2)` statistics.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.l1i.stats(), self.l1d.stats(), self.l2.stats())
    }

    /// `(ITLB, DTLB)` `(accesses, misses)` statistics.
    pub fn tlb_stats(&self) -> ((u64, u64), (u64, u64)) {
        (self.itlb.stats(), self.dtlb.stats())
    }

    /// The L1 instruction cache (for bank-conflict queries).
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Serializes every component of the hierarchy (caches, MSHR files,
    /// TLBs). The memory latency is configuration, not state.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.l1i.save_state(w);
        self.l1d.save_state(w);
        self.l2.save_state(w);
        self.imshr.save_state(w);
        self.dmshr.save_state(w);
        self.itlb.save_state(w);
        self.dtlb.save_state(w);
    }

    /// Restores state saved by [`MemoryHierarchy::save_state`] into a
    /// hierarchy of identical geometry, in place.
    ///
    /// # Errors
    ///
    /// `E0018` on any component geometry mismatch or a malformed byte
    /// stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.l1i.load_state(r)?;
        self.l1d.load_state(r)?;
        self.l2.load_state(r)?;
        self.imshr.load_state(r)?;
        self.dmshr.load_state(r)?;
        self.itlb.load_state(r)?;
        self.dtlb.load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::hpca2004(2)
    }

    #[test]
    fn fetch_miss_then_hit() {
        let mut h = hier();
        let pc = Addr::new(0x40_0000);
        match h.fetch(pc, 0) {
            FetchOutcome::Miss { ready } => {
                // Cold miss goes to memory: ≥ 100 cycles.
                assert!(ready >= 100, "cold fetch ready at {ready}");
            }
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(h.fetch(pc, 200), FetchOutcome::Hit);
        assert_eq!(h.fetch(pc + 60, 201), FetchOutcome::Hit, "same line");
    }

    #[test]
    fn fetch_l2_hit_is_cheaper_than_memory() {
        let mut h = hier();
        let pc = Addr::new(0x40_0000);
        let FetchOutcome::Miss { ready: cold } = h.fetch(pc, 0) else {
            panic!("expected cold miss");
        };
        // Evict from tiny L1I by streaming 512 lines, keeping L2 resident.
        // Accesses are spaced out so each fill completes before the next
        // (the I-side MSHR file is small).
        for i in 1..=512u64 {
            let _ = h.fetch(pc + i * 64, 1000 + i * 200);
        }
        let FetchOutcome::Miss { ready } = h.fetch(pc, 10_000) else {
            panic!("expected L1 miss");
        };
        let l2_lat = ready - 10_000;
        assert!(l2_lat < cold, "L2 hit {l2_lat} should beat memory {cold}");
        assert!(l2_lat >= 10, "L2 hit must charge the 10-cycle latency");
    }

    #[test]
    fn fetch_mshr_full_stalls_and_merge_shares() {
        let mut h = MemoryHierarchy::new(MemoryConfig {
            i_mshrs: 1,
            ..MemoryConfig::hpca2004(1)
        })
        .unwrap();
        let a = Addr::new(0x10_0000);
        let b = Addr::new(0x20_0000);
        let FetchOutcome::Miss { ready } = h.fetch(a, 0) else {
            panic!()
        };
        // Different line, file full → stall.
        assert_eq!(h.fetch(b, 1), FetchOutcome::Stall);
        // Same pending line → merged miss with the same ready time.
        assert_eq!(h.fetch(a + 4, 1), FetchOutcome::Miss { ready });
        // After the fill completes the slot frees.
        assert!(matches!(h.fetch(b, ready + 1), FetchOutcome::Miss { .. }));
    }

    #[test]
    fn load_hit_costs_nothing_extra() {
        let mut h = hier();
        let a = Addr::new(0x80_0000);
        let DataOutcome::Done { ready } = h.load(a, 0) else {
            panic!()
        };
        assert!(ready > 100, "cold load misses to memory");
        let DataOutcome::Done { ready } = h.load(a, ready + 1) else {
            panic!()
        };
        assert_eq!(ready, ready, "L1 hit");
        let DataOutcome::Done { ready: r2 } = h.load(a + 8, 500) else {
            panic!()
        };
        assert_eq!(r2, 500, "same-line hit is free");
    }

    #[test]
    fn loads_merge_into_pending_miss() {
        let mut h = hier();
        let a = Addr::new(0x90_0000);
        let DataOutcome::Done { ready } = h.load(a, 0) else {
            panic!()
        };
        let DataOutcome::Done { ready: r2 } = h.load(a + 16, 3) else {
            panic!()
        };
        assert_eq!(r2, ready, "second load shares the fill");
    }

    #[test]
    fn stores_never_stall() {
        let mut h = hier();
        for i in 0..100u64 {
            h.store(Addr::new(0xa0_0000 + i * 64), i);
        }
        // All lines now present and dirty; a re-store hits.
        h.store(Addr::new(0xa0_0000), 1000);
        let (_, l1d, _) = h.cache_stats();
        assert!(l1d.hits >= 1);
    }

    #[test]
    fn working_set_beyond_l2_misses_to_memory() {
        let mut h = hier();
        // Stream 2 MB (L2 is 1 MB): every revisit goes to memory.
        let lines = 2 * 1024 * 1024 / 64u64;
        for i in 0..lines {
            let _ = h.load(Addr::new(0x100_0000 + i * 64), i * 3);
        }
        let t0 = 10_000_000;
        let DataOutcome::Done { ready } = h.load(Addr::new(0x100_0000), t0) else {
            panic!()
        };
        assert!(ready - t0 >= 100, "thrashed line must pay memory latency");
    }

    #[test]
    fn snapshot_round_trip_resumes_identically() {
        let mut h = hier();
        // Warm the hierarchy with a mixed access pattern, leaving misses
        // in flight at snapshot time.
        for i in 0..200u64 {
            let _ = h.fetch(Addr::new(0x40_0000 + (i % 37) * 64), i * 3);
            let _ = h.load(Addr::new(0x80_0000 + (i % 53) * 64), i * 3 + 1);
            if i % 7 == 0 {
                h.store(Addr::new(0xa0_0000 + i * 64), i * 3 + 2);
            }
        }
        let mut w = SnapWriter::new();
        h.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = hier();
        let mut r = SnapReader::new(&bytes);
        fresh.load_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(fresh.cache_stats(), h.cache_stats());
        assert_eq!(fresh.tlb_stats(), h.tlb_stats());
        // Both copies behave identically from here, including pending-miss
        // merging and LRU decisions.
        for i in 0..300u64 {
            let now = 600 + i * 2;
            assert_eq!(
                fresh.fetch(Addr::new(0x40_0000 + (i % 41) * 64), now),
                h.fetch(Addr::new(0x40_0000 + (i % 41) * 64), now),
            );
            assert_eq!(
                fresh.load(Addr::new(0x80_0000 + (i % 59) * 64), now),
                h.load(Addr::new(0x80_0000 + (i % 59) * 64), now),
            );
        }
        assert_eq!(fresh.cache_stats(), h.cache_stats());

        // A geometry mismatch (different thread count → MSHR capacity) is a
        // diagnostic, not silent corruption.
        let mut tiny = MemoryHierarchy::new(MemoryConfig {
            l1i: CacheConfig {
                size_bytes: 1024,
                ..CacheConfig::l1i_hpca2004()
            },
            ..MemoryConfig::hpca2004(2)
        })
        .unwrap();
        let err = tiny.load_state(&mut SnapReader::new(&bytes)).unwrap_err();
        assert_eq!(err.code, "E0018");
    }

    #[test]
    fn tlb_misses_add_latency() {
        let mut h = hier();
        // First touch of a page pays the walk even on an (impossible) cache
        // hit path; here it's a miss path, so ready ≥ walk + memory.
        let DataOutcome::Done { ready } = h.load(Addr::new(0x300_0000), 0) else {
            panic!()
        };
        assert!(ready >= 130);
        let ((ia, im), (da, dm)) = h.tlb_stats();
        assert_eq!((ia, im), (0, 0));
        assert_eq!(da, 1);
        assert_eq!(dm, 1);
    }
}
