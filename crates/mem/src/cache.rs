//! A set-associative cache tag model with LRU replacement and banking.

use smt_isa::{snap_mismatch, Addr, Diagnostic, SnapReader, SnapWriter};

/// Configuration of one cache level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in statistics (`"L1I"`, `"L1D"`, `"L2"`).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Number of interleaved banks (for conflict modeling).
    pub banks: u64,
    /// Access latency in cycles charged on a hit *beyond* the pipelined
    /// first cycle (L1s use 0, the paper's L2 uses 10).
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The paper's 32 KB, 2-way, 8-bank, 64 B-line L1 instruction cache.
    pub fn l1i_hpca2004() -> Self {
        CacheConfig {
            name: "L1I",
            size_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 64,
            banks: 8,
            hit_latency: 0,
        }
    }

    /// The paper's 32 KB, 2-way, 8-bank, 64 B-line L1 data cache.
    pub fn l1d_hpca2004() -> Self {
        CacheConfig {
            name: "L1D",
            size_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 64,
            banks: 8,
            hit_latency: 0,
        }
    }

    /// The paper's 1 MB, 2-way, 8-bank, 10-cycle unified L2.
    pub fn l2_hpca2004() -> Self {
        CacheConfig {
            name: "L2",
            size_bytes: 1024 * 1024,
            ways: 2,
            line_bytes: 64,
            banks: 8,
            hit_latency: 10,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / self.ways as u64
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    lru: u64,
    valid: bool,
    dirty: bool,
}

/// Hit/miss statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Lines filled.
    pub fills: u64,
    /// Dirty evictions (writebacks).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        1.0 - self.hits as f64 / self.accesses as f64
    }
}

/// One cache level's tag array.
///
/// This is a *timing* model: data never moves, only tags and LRU state.
/// Fills are performed eagerly by the hierarchy when it charges the miss
/// latency (the standard "functional fill, timed latency" simplification).
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    set_mask: u64,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache from its configuration.
    ///
    /// # Errors
    ///
    /// `E0009` if geometry values are zero, the set count is not a power of
    /// two, or the bank count is zero or not a power of two.
    pub fn new(cfg: CacheConfig) -> Result<Self, Diagnostic> {
        let field = |suffix: &str| format!("mem.{}.{}", cfg.name.to_lowercase(), suffix);
        if cfg.ways == 0 || cfg.line_bytes == 0 || cfg.size_bytes == 0 {
            return Err(Diagnostic::error(
                "E0009",
                field("geometry"),
                format!(
                    "cache geometry must be positive (size {} B, {} ways, {} B lines)",
                    cfg.size_bytes, cfg.ways, cfg.line_bytes
                ),
                "use positive size, associativity and line size",
            ));
        }
        let num_sets = cfg.num_sets();
        if num_sets == 0 || !num_sets.is_power_of_two() {
            return Err(Diagnostic::error(
                "E0009",
                field("size_bytes"),
                format!("set count must be a power of two (got {num_sets})"),
                "choose size / line / ways so the set count is a power of two",
            ));
        }
        if !cfg.banks.is_power_of_two() {
            return Err(Diagnostic::error(
                "E0009",
                field("banks"),
                format!("bank count must be a power of two (got {})", cfg.banks),
                "the paper uses 8 banks",
            ));
        }
        Ok(Cache {
            lines: vec![
                Line {
                    tag: 0,
                    lru: 0,
                    valid: false,
                    dirty: false
                };
                (num_sets * cfg.ways as u64) as usize
            ],
            set_mask: num_sets - 1,
            cfg,
            tick: 0,
            stats: CacheStats::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_and_tag(&self, addr: Addr) -> (u64, u64) {
        let line = addr.raw() / self.cfg.line_bytes;
        (line & self.set_mask, line >> self.set_mask.count_ones())
    }

    fn set_slice(&mut self, set: u64) -> &mut [Line] {
        let w = self.cfg.ways;
        let base = set as usize * w;
        &mut self.lines[base..base + w]
    }

    /// Looks up `addr`; returns `true` on hit. Updates LRU and statistics;
    /// a write hit marks the line dirty. Misses do **not** fill — callers
    /// charge latency and then call [`Cache::fill`].
    pub fn access(&mut self, addr: Addr, write: bool) -> bool {
        self.stats.accesses += 1;
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        let hit = {
            let ways = self.set_slice(set);
            match ways.iter_mut().find(|l| l.valid && l.tag == tag) {
                Some(l) => {
                    l.lru = tick;
                    if write {
                        l.dirty = true;
                    }
                    true
                }
                None => false,
            }
        };
        if hit {
            self.stats.hits += 1;
        }
        hit
    }

    /// Whether `addr` is present, without perturbing any state.
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set as usize * self.cfg.ways;
        self.lines[base..base + self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Fills the line containing `addr`, evicting the LRU way if needed.
    ///
    /// Returns the evicted line's address if the victim was dirty (for
    /// writeback modeling).
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<Addr> {
        self.stats.fills += 1;
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        let line_bytes = self.cfg.line_bytes;
        let set_bits = self.set_mask.count_ones();
        let mut writeback = None;
        {
            let ways = self.set_slice(set);
            if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
                l.lru = tick;
                l.dirty |= dirty;
                return None;
            }
            let victim = if let Some(inv) = ways.iter_mut().find(|l| !l.valid) {
                inv
            } else {
                ways.iter_mut()
                    .min_by_key(|l| l.lru)
                    // lint:allow(no-panic): ways is non-empty, so min_by_key always yields a victim
                    .expect("ways nonempty")
            };
            if victim.valid && victim.dirty {
                let vline = (victim.tag << set_bits) | set;
                writeback = Some(Addr::new(vline * line_bytes));
            }
            *victim = Line {
                tag,
                lru: tick,
                valid: true,
                dirty,
            };
        }
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        writeback
    }

    /// Bank index of `addr`'s line.
    pub fn bank(&self, addr: Addr) -> u64 {
        addr.bank(self.cfg.line_bytes, self.cfg.banks)
    }

    /// Statistics since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Serializes every tag-array line plus LRU tick and statistics.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.lines.len());
        for l in &self.lines {
            w.u64(l.tag);
            w.u64(l.lru);
            w.bool(l.valid);
            w.bool(l.dirty);
        }
        w.u64(self.tick);
        w.u64(self.stats.accesses);
        w.u64(self.stats.hits);
        w.u64(self.stats.fills);
        w.u64(self.stats.writebacks);
    }

    /// Restores state saved by [`Cache::save_state`] into a cache of
    /// identical geometry, in place.
    ///
    /// # Errors
    ///
    /// `E0018` if the stored line count differs from this cache's or the
    /// byte stream is malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        let n = r.usize()?;
        if n != self.lines.len() {
            return Err(snap_mismatch(
                "cache geometry",
                format!(
                    "snapshot has {n} lines, cache {} has {}",
                    self.cfg.name,
                    self.lines.len()
                ),
            ));
        }
        for l in &mut self.lines {
            l.tag = r.u64()?;
            l.lru = r.u64()?;
            l.valid = r.bool()?;
            l.dirty = r.bool()?;
        }
        self.tick = r.u64()?;
        self.stats.accesses = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.fills = r.u64()?;
        self.stats.writebacks = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            name: "T",
            size_bytes: 1024, // 4 sets × 4 ways × 64 B
            ways: 4,
            line_bytes: 64,
            banks: 2,
            hit_latency: 0,
        })
        .unwrap()
    }

    #[test]
    fn geometry_matches_table3() {
        let l1 = Cache::new(CacheConfig::l1i_hpca2004()).unwrap();
        assert_eq!(l1.config().num_sets(), 256);
        let l2 = Cache::new(CacheConfig::l2_hpca2004()).unwrap();
        assert_eq!(l2.config().num_sets(), 8192);
        assert_eq!(l2.config().hit_latency, 10);
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = tiny();
        let a = Addr::new(0x1000);
        assert!(!c.access(a, false));
        c.fill(a, false);
        assert!(c.access(a, false));
        assert!(c.access(a + 63, false), "same line hits");
        assert!(!c.access(a + 64, false), "next line misses");
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny(); // 4 sets → same set every 4 lines
        let stride = 4 * 64;
        let addrs: Vec<Addr> = (0..5).map(|i| Addr::new(0x1000 + i * stride)).collect();
        for &a in &addrs[..4] {
            c.fill(a, false);
        }
        // Touch 0 so 1 is LRU, then fill the 5th.
        c.access(addrs[0], false);
        c.fill(addrs[4], false);
        assert!(c.probe(addrs[0]));
        assert!(!c.probe(addrs[1]), "LRU line must be evicted");
        assert!(c.probe(addrs[4]));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        let stride = 4 * 64;
        let dirty_addr = Addr::new(0x1000);
        c.fill(dirty_addr, false);
        assert!(c.access(dirty_addr, true)); // write marks dirty
        for i in 1..4 {
            c.fill(Addr::new(0x1000 + i * stride), false);
        }
        let wb = c.fill(Addr::new(0x1000 + 4 * stride), false);
        assert_eq!(wb, Some(Addr::new(0x1000)), "dirty victim written back");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = tiny();
        let stride = 4 * 64;
        for i in 0..5 {
            assert_eq!(c.fill(Addr::new(0x1000 + i * stride), false), None);
        }
    }

    #[test]
    fn stats_and_miss_rate() {
        let mut c = tiny();
        let a = Addr::new(0x40);
        c.access(a, false); // miss
        c.fill(a, false);
        c.access(a, false); // hit
        c.access(a, false); // hit
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 2);
        assert!((s.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn banks_interleave() {
        let c = tiny();
        assert_eq!(c.bank(Addr::new(0)), 0);
        assert_eq!(c.bank(Addr::new(64)), 1);
        assert_eq!(c.bank(Addr::new(128)), 0);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = tiny(); // 1 KB
                            // Stream over 8 KB twice: second pass still misses everywhere.
        let lines: Vec<Addr> = (0..128).map(|i| Addr::new(i * 64)).collect();
        for &a in &lines {
            c.access(a, false);
            c.fill(a, false);
        }
        let before = c.stats().hits;
        for &a in &lines {
            c.access(a, false);
            c.fill(a, false);
        }
        assert_eq!(c.stats().hits, before, "capacity thrash must not hit");
    }
}
