//! # smt-bpred — branch-prediction substrates
//!
//! The prediction structures of the three SMT front-ends the HPCA 2004 paper
//! compares:
//!
//! | front-end | direction | target / block | extras |
//! |---|---|---|---|
//! | gshare+BTB | [`Gshare`] (64K, 16-bit hist) | [`Btb`] (2K, 4-way) | [`ReturnStack`] |
//! | gskew+FTB | [`Gskew`] (3×32K, 15-bit hist) | [`Ftb`] (2K, 4-way) | [`ReturnStack`] |
//! | stream | — (streams end at taken branches) | [`StreamPredictor`] (1K+4K, 4-way, DOLC 16-2-4-10) | [`ReturnStack`] |
//!
//! All predictor tables are shared among hardware threads, while history
//! registers ([`GlobalHistory`]), path registers ([`StreamPath`]) and return
//! stacks are per-thread — exactly the split Table 3 of the paper marks as
//! "replicated per thread".
//!
//! # Example
//!
//! ```
//! use smt_bpred::{Gshare, GlobalHistory};
//! use smt_isa::Addr;
//!
//! let mut gshare = Gshare::hpca2004();
//! let mut hist = GlobalHistory::new(16);
//! let pc = Addr::new(0x4_0000);
//! let pred = gshare.predict(pc, hist);
//! // ... at resolve time, with the checkpointed history:
//! gshare.update(pc, hist, true);
//! hist.push(true);
//! # let _ = pred;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assoc;
mod btb;
mod counters;
mod ftb;
mod gshare;
mod gskew;
mod history;
mod ras;
mod stream;
mod tracecache;

pub use assoc::SetAssoc;
pub use btb::{Btb, BtbEntry};
pub use counters::{CounterTable, TwoBit};
pub use ftb::{Ftb, FtbEnd, FtbPrediction, ObservedEnd};
pub use gshare::Gshare;
pub use gskew::{Gskew, GskewProbe};
pub use history::GlobalHistory;
pub use ras::{RasCheckpoint, ReturnStack};
pub use stream::{Dolc, ObservedStream, StreamEnd, StreamPath, StreamPrediction, StreamPredictor};
pub use tracecache::{Trace, TraceCache, TraceSegment};
