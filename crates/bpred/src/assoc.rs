//! A generic set-associative table with true-LRU replacement, shared by the
//! BTB, the FTB and the stream predictor.

use smt_isa::{snap_mismatch, Diagnostic, Snap, SnapReader, SnapWriter};

/// One way of a set.
#[derive(Clone, Debug)]
struct Way<E> {
    tag: u64,
    lru: u64,
    entry: E,
}

/// A set-associative, tagged table with true-LRU replacement.
///
/// The table is generic over the payload `E`. Callers supply `(set, tag)`
/// pairs; helpers for deriving them from addresses live with the callers,
/// since index/tag splits differ between structures.
#[derive(Clone, Debug)]
pub struct SetAssoc<E> {
    sets: Vec<Vec<Way<E>>>,
    ways: usize,
    tick: u64,
    lookups: u64,
    hits: u64,
}

impl<E> SetAssoc<E> {
    /// Creates a table with `entries` total entries organized as
    /// `entries / ways` sets of `ways` ways.
    ///
    /// # Errors
    ///
    /// `E0002` if `entries` is not a positive multiple of `ways`;
    /// `E0001` if the resulting set count is not a power of two.
    pub fn new(entries: usize, ways: usize) -> Result<Self, Diagnostic> {
        if ways == 0 || entries == 0 {
            return Err(Diagnostic::error(
                "E0002",
                "entries/ways",
                format!("empty table ({entries} entries, {ways} ways)"),
                "use positive entry and way counts",
            ));
        }
        if !entries.is_multiple_of(ways) {
            return Err(Diagnostic::error(
                "E0002",
                "entries",
                format!("{entries} entries is not a multiple of {ways} ways"),
                "make entries a multiple of the associativity",
            ));
        }
        let num_sets = entries / ways;
        if !num_sets.is_power_of_two() {
            return Err(Diagnostic::error(
                "E0001",
                "entries",
                format!("set count must be a power of two (got {num_sets})"),
                "choose entries so that entries / ways is a power of two",
            ));
        }
        Ok(SetAssoc {
            sets: (0..num_sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            tick: 0,
            lookups: 0,
            hits: 0,
        })
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Set-index mask (`num_sets - 1`).
    pub fn set_mask(&self) -> u64 {
        self.sets.len() as u64 - 1
    }

    fn set_of(&mut self, set: u64) -> &mut Vec<Way<E>> {
        let mask = self.sets.len() as u64 - 1;
        &mut self.sets[(set & mask) as usize]
    }

    /// Looks up `(set, tag)`, updating LRU and hit statistics on hit.
    pub fn lookup(&mut self, set: u64, tag: u64) -> Option<&mut E> {
        self.lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        let mask = self.sets.len() as u64 - 1;
        let ways = &mut self.sets[(set & mask) as usize];
        match ways.iter_mut().find(|w| w.tag == tag) {
            Some(w) => {
                w.lru = tick;
                self.hits += 1;
                Some(&mut w.entry)
            }
            None => None,
        }
    }

    /// Looks up `(set, tag)` without touching LRU or statistics.
    pub fn peek(&self, set: u64, tag: u64) -> Option<&E> {
        let mask = self.sets.len() as u64 - 1;
        self.sets[(set & mask) as usize]
            .iter()
            .find(|w| w.tag == tag)
            .map(|w| &w.entry)
    }

    /// Inserts or replaces the entry for `(set, tag)`.
    ///
    /// On conflict the least-recently-used way is evicted; the evicted
    /// payload is returned (with its tag) so callers can model writebacks.
    pub fn insert(&mut self, set: u64, tag: u64, entry: E) -> Option<(u64, E)> {
        self.tick += 1;
        let tick = self.tick;
        let cap = self.ways;
        let ways = self.set_of(set);
        if let Some(w) = ways.iter_mut().find(|w| w.tag == tag) {
            w.lru = tick;
            let old = std::mem::replace(&mut w.entry, entry);
            return Some((tag, old));
        }
        if ways.len() < cap {
            ways.push(Way {
                tag,
                lru: tick,
                entry,
            });
            return None;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|w| w.lru)
            .expect("set is non-empty: ways.len() == cap > 0"); // lint:allow(no-panic): ways.len() == cap > 0, so the set is never empty
        let old_tag = victim.tag;
        victim.tag = tag;
        victim.lru = tick;
        let old = std::mem::replace(&mut victim.entry, entry);
        Some((old_tag, old))
    }

    /// Invalidates `(set, tag)` if present, returning the payload.
    pub fn invalidate(&mut self, set: u64, tag: u64) -> Option<E> {
        let ways = self.set_of(set);
        let pos = ways.iter().position(|w| w.tag == tag)?;
        Some(ways.swap_remove(pos).entry)
    }

    /// `(lookups, hits)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }
}

impl<E: Snap> SetAssoc<E> {
    /// Serializes the full table contents and LRU/statistics state.
    ///
    /// Geometry (set count, associativity) is *not* written: it is derived
    /// from configuration at construction time and checked on load.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.tick);
        w.u64(self.lookups);
        w.u64(self.hits);
        for set in &self.sets {
            w.usize(set.len());
            for way in set {
                w.u64(way.tag);
                w.u64(way.lru);
                way.entry.save(w);
            }
        }
    }

    /// Restores table contents saved by [`SetAssoc::save_state`] into a table
    /// of identical geometry, preserving per-set capacity.
    ///
    /// # Errors
    ///
    /// `E0018` if a set's stored occupancy exceeds this table's associativity
    /// (geometry mismatch) or the byte stream is malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.tick = r.u64()?;
        self.lookups = r.u64()?;
        self.hits = r.u64()?;
        let ways = self.ways;
        for set in &mut self.sets {
            let n = r.usize()?;
            if n > ways {
                return Err(snap_mismatch(
                    "set-assoc occupancy",
                    format!("snapshot holds {n} ways but the table has {ways}"),
                ));
            }
            set.clear();
            for _ in 0..n {
                set.push(Way {
                    tag: r.u64()?,
                    lru: r.u64()?,
                    entry: E::load(r)?,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let t: SetAssoc<u32> = SetAssoc::new(2048, 4).unwrap();
        assert_eq!(t.num_sets(), 512);
        assert_eq!(t.ways(), 4);
        assert_eq!(t.set_mask(), 511);
    }

    #[test]
    fn insert_then_lookup() {
        let mut t: SetAssoc<u32> = SetAssoc::new(16, 4).unwrap();
        assert!(t.insert(1, 100, 42).is_none());
        assert_eq!(t.lookup(1, 100), Some(&mut 42));
        assert_eq!(t.peek(1, 100), Some(&42));
        assert_eq!(t.lookup(1, 101), None);
        assert_eq!(t.lookup(2, 100), None);
    }

    #[test]
    fn insert_same_tag_replaces() {
        let mut t: SetAssoc<u32> = SetAssoc::new(16, 4).unwrap();
        t.insert(0, 7, 1);
        let old = t.insert(0, 7, 2);
        assert_eq!(old, Some((7, 1)));
        assert_eq!(t.peek(0, 7), Some(&2));
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut t: SetAssoc<u32> = SetAssoc::new(8, 4).unwrap(); // 2 sets × 4 ways
        for tag in 0..4 {
            t.insert(0, tag, tag as u32);
        }
        // Touch tags 0, 2, 3 — tag 1 becomes LRU.
        t.lookup(0, 0);
        t.lookup(0, 2);
        t.lookup(0, 3);
        let evicted = t.insert(0, 99, 99);
        assert_eq!(evicted, Some((1, 1)));
        assert!(t.peek(0, 1).is_none());
        assert!(t.peek(0, 0).is_some());
    }

    #[test]
    fn sets_are_independent() {
        let mut t: SetAssoc<u32> = SetAssoc::new(8, 4).unwrap();
        for tag in 0..4 {
            t.insert(0, tag, 0);
        }
        // Set 1 is still empty; inserting there evicts nothing.
        assert!(t.insert(1, 50, 1).is_none());
    }

    #[test]
    fn invalidate_removes() {
        let mut t: SetAssoc<u32> = SetAssoc::new(16, 4).unwrap();
        t.insert(3, 8, 5);
        assert_eq!(t.invalidate(3, 8), Some(5));
        assert!(t.peek(3, 8).is_none());
        assert_eq!(t.invalidate(3, 8), None);
    }

    #[test]
    fn set_index_wraps() {
        let mut t: SetAssoc<u32> = SetAssoc::new(8, 4).unwrap(); // 2 sets
        t.insert(5, 1, 9); // set 5 & 1 = 1
        assert_eq!(t.peek(1, 1), Some(&9));
    }

    #[test]
    fn stats_count_lookups_and_hits() {
        let mut t: SetAssoc<u32> = SetAssoc::new(16, 4).unwrap();
        t.insert(0, 1, 1);
        t.lookup(0, 1);
        t.lookup(0, 2);
        assert_eq!(t.stats(), (2, 1));
    }

    #[test]
    fn snapshot_round_trip_preserves_contents_and_lru() {
        let mut t: SetAssoc<u32> = SetAssoc::new(8, 4).unwrap();
        for tag in 0..4 {
            t.insert(0, tag, tag as u32);
        }
        t.lookup(0, 2);
        t.insert(1, 9, 90);

        let mut w = SnapWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh: SetAssoc<u32> = SetAssoc::new(8, 4).unwrap();
        let mut r = SnapReader::new(&bytes);
        fresh.load_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(fresh.stats(), t.stats());
        assert_eq!(fresh.peek(0, 2), Some(&2));
        assert_eq!(fresh.peek(1, 9), Some(&90));
        // LRU state survives: evicting from set 0 must pick the same victim.
        assert_eq!(fresh.insert(0, 77, 77), t.insert(0, 77, 77));

        // Geometry mismatch (fewer ways than stored) is a diagnostic.
        let mut narrow: SetAssoc<u32> = SetAssoc::new(4, 2).unwrap();
        let err = narrow.load_state(&mut SnapReader::new(&bytes)).unwrap_err();
        assert_eq!(err.code, "E0018");
    }

    #[test]
    fn validates_geometry_with_diagnostics() {
        let d = SetAssoc::<u32>::new(12, 4).unwrap_err();
        assert_eq!(d.code, "E0001");
        assert!(d.to_string().contains("power of two"));
        assert_eq!(SetAssoc::<u32>::new(0, 4).unwrap_err().code, "E0002");
        assert_eq!(SetAssoc::<u32>::new(16, 0).unwrap_err().code, "E0002");
        assert_eq!(SetAssoc::<u32>::new(10, 4).unwrap_err().code, "E0002");
    }
}
