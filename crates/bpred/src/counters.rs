//! Saturating counters — the basic state element of direction predictors.

use smt_isa::{snap_mismatch, Diagnostic, Snap, SnapReader, SnapWriter};

/// A 2-bit saturating counter.
///
/// States 0–1 predict not-taken, 2–3 predict taken. New counters start
/// weakly taken (2), which favours the loop branches that dominate dynamic
/// conditional branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TwoBit(u8);

impl TwoBit {
    /// Strongly not-taken.
    pub const STRONG_NT: TwoBit = TwoBit(0);
    /// Weakly not-taken.
    pub const WEAK_NT: TwoBit = TwoBit(1);
    /// Weakly taken.
    pub const WEAK_T: TwoBit = TwoBit(2);
    /// Strongly taken.
    pub const STRONG_T: TwoBit = TwoBit(3);

    /// Creates a counter in the given state (clamped to 0..=3).
    pub fn new(state: u8) -> Self {
        TwoBit(state.min(3))
    }

    /// The predicted direction.
    pub fn taken(self) -> bool {
        self.0 >= 2
    }

    /// Whether the counter is in a saturated (strong) state.
    pub fn is_strong(self) -> bool {
        self.0 == 0 || self.0 == 3
    }

    /// Trains the counter toward the actual outcome.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// Raw state, 0..=3.
    pub fn state(self) -> u8 {
        self.0
    }
}

impl Default for TwoBit {
    fn default() -> Self {
        TwoBit::WEAK_T
    }
}

impl Snap for TwoBit {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(self.0);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        let state = r.u8()?;
        if state > 3 {
            return Err(snap_mismatch(
                "two-bit counter",
                format!("state {state} out of range 0..=3"),
            ));
        }
        Ok(TwoBit(state))
    }
}

/// A table of 2-bit counters of power-of-two size, bit-packed 32 counters
/// per `u64` word.
///
/// The packed layout quarters the table footprint versus one byte per
/// counter, so the large gshare/gskew banks (Table 3: up to 64K entries)
/// fit in 16 KB instead of 64 KB and stay resident in the host L1/L2 while
/// the simulator runs. Packing is an implementation detail: the API is
/// value-based ([`TwoBit`] in, [`TwoBit`] out) and behaves identically to
/// the byte-array layout — proven by the differential property test in
/// `tests/properties.rs` (`packed_counter_table_matches_byte_reference`).
#[derive(Clone, Debug)]
pub struct CounterTable {
    /// 32 two-bit counters per word, counter `i` at bits `2*(i%32)..`.
    words: Vec<u64>,
    entries: usize,
    mask: u64,
}

/// Every counter in a fresh table starts weakly taken (state 2,
/// `0b10` — replicated across a word this is `0xAAAA_AAAA_AAAA_AAAA`).
const INIT_WORD: u64 = 0xAAAA_AAAA_AAAA_AAAA;

impl CounterTable {
    /// Creates a table with `entries` counters, all weakly taken.
    ///
    /// # Errors
    ///
    /// `E0001` if `entries` is not a power of two (zero included).
    pub fn new(entries: usize) -> Result<Self, Diagnostic> {
        if !entries.is_power_of_two() {
            return Err(Diagnostic::error(
                "E0001",
                "entries",
                format!("counter-table size must be a power of two (got {entries})"),
                "round the table size to a power of two",
            ));
        }
        Ok(CounterTable {
            words: vec![INIT_WORD; entries.div_ceil(32)],
            entries,
            mask: entries as u64 - 1,
        })
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the table is empty (never: construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The counter at `index` (wrapped into range).
    pub fn get(&self, index: u64) -> TwoBit {
        let i = (index & self.mask) as usize;
        // lint:allow(no-lossy-cast): masked to two bits, cannot truncate
        TwoBit(((self.words[i >> 5] >> ((i & 31) * 2)) & 0b11) as u8)
    }

    /// Trains the counter at `index` (wrapped into range).
    pub fn update(&mut self, index: u64, taken: bool) {
        let i = (index & self.mask) as usize;
        let shift = (i & 31) * 2;
        let word = &mut self.words[i >> 5];
        // lint:allow(no-lossy-cast): masked to two bits, cannot truncate
        let state = ((*word >> shift) & 0b11) as u8;
        let next = if taken {
            (state + 1).min(3)
        } else {
            state.saturating_sub(1)
        };
        *word = (*word & !(0b11 << shift)) | (u64::from(next) << shift);
    }

    /// Overwrites the counter at `index` (wrapped into range) with `state`.
    ///
    /// This is the write half of a batched probe: a caller that already read
    /// the counter (e.g. through a `GskewProbe`) trains it in registers and
    /// writes the result back without re-reading the packed word's counter
    /// bits. `set(i, trained(get(i)))` is exactly [`CounterTable::update`]
    /// as long as the table was not touched between the read and the write.
    pub fn set(&mut self, index: u64, state: TwoBit) {
        let i = (index & self.mask) as usize;
        let shift = (i & 31) * 2;
        let word = &mut self.words[i >> 5];
        *word = (*word & !(0b11 << shift)) | (u64::from(state.state()) << shift);
    }

    /// Index mask (`len - 1`).
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Bytes of storage actually held (packed words).
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Serializes the packed counter words.
    ///
    /// The entry count is written first and checked on load so a snapshot
    /// taken under one geometry cannot silently restore into another.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.entries);
        for word in &self.words {
            w.u64(*word);
        }
    }

    /// Restores counter state saved by [`CounterTable::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` if the stored entry count differs from this table's or the
    /// byte stream is malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        let entries = r.usize()?;
        if entries != self.entries {
            return Err(snap_mismatch(
                "counter-table size",
                format!("snapshot has {entries} entries, table has {}", self.entries),
            ));
        }
        for word in &mut self.words {
            *word = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_saturates_both_ends() {
        let mut c = TwoBit::STRONG_NT;
        c.update(false);
        assert_eq!(c, TwoBit::STRONG_NT);
        c.update(true);
        assert_eq!(c, TwoBit::WEAK_NT);
        c.update(true);
        c.update(true);
        assert_eq!(c, TwoBit::STRONG_T);
        c.update(true);
        assert_eq!(c, TwoBit::STRONG_T);
    }

    #[test]
    fn two_bit_hysteresis() {
        // A single anomalous not-taken outcome must not flip a strong-taken
        // counter's prediction.
        let mut c = TwoBit::STRONG_T;
        c.update(false);
        assert!(c.taken());
        c.update(false);
        assert!(!c.taken());
    }

    #[test]
    fn default_is_weakly_taken() {
        assert_eq!(TwoBit::default(), TwoBit::WEAK_T);
        assert!(TwoBit::default().taken());
        assert!(!TwoBit::default().is_strong());
    }

    #[test]
    fn new_clamps() {
        assert_eq!(TwoBit::new(9), TwoBit::STRONG_T);
    }

    #[test]
    fn table_wraps_indices() {
        let mut t = CounterTable::new(16).unwrap();
        assert_eq!(t.len(), 16);
        t.update(3, false);
        t.update(3 + 16, false);
        assert!(!t.get(3).taken());
        assert_eq!(t.get(3), t.get(19));
    }

    #[test]
    fn packed_table_initialises_weakly_taken() {
        let t = CounterTable::new(128).unwrap();
        for i in 0..128 {
            assert_eq!(t.get(i), TwoBit::WEAK_T, "counter {i}");
        }
        // 128 counters × 2 bits = 32 bytes, a quarter of the byte layout.
        assert_eq!(t.storage_bytes(), 32);
    }

    #[test]
    fn packed_neighbours_are_independent() {
        // Updates to a counter never disturb the other 31 sharing its word.
        let mut t = CounterTable::new(64).unwrap();
        t.update(33, false);
        t.update(33, false);
        assert_eq!(t.get(33), TwoBit::STRONG_NT);
        t.update(34, true);
        assert_eq!(t.get(34), TwoBit::STRONG_T);
        assert_eq!(t.get(32), TwoBit::WEAK_T);
        assert_eq!(t.get(35), TwoBit::WEAK_T);
        assert_eq!(t.get(33), TwoBit::STRONG_NT);
    }

    #[test]
    fn sub_word_table_works() {
        // Tables smaller than one packed word still hold `entries` counters.
        let mut t = CounterTable::new(2).unwrap();
        assert_eq!(t.len(), 2);
        t.update(0, false);
        t.update(1, true);
        assert!(!t.get(0).taken());
        assert!(t.get(1).taken());
        // Index 2 wraps onto 0.
        assert_eq!(t.get(2), t.get(0));
    }

    #[test]
    fn snapshot_round_trip_restores_every_counter() {
        let mut t = CounterTable::new(64).unwrap();
        t.update(5, false);
        t.update(5, false);
        t.update(40, true);
        let mut w = SnapWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = CounterTable::new(64).unwrap();
        let mut r = SnapReader::new(&bytes);
        fresh.load_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        for i in 0..64 {
            assert_eq!(fresh.get(i), t.get(i), "counter {i}");
        }

        let mut wrong = CounterTable::new(32).unwrap();
        let err = wrong.load_state(&mut SnapReader::new(&bytes)).unwrap_err();
        assert_eq!(err.code, "E0018");

        let mut c = SnapWriter::new();
        TwoBit::STRONG_T.save(&mut c);
        c.u8(7); // invalid counter state
        let counter_bytes = c.into_bytes();
        let mut r = SnapReader::new(&counter_bytes);
        assert_eq!(TwoBit::load(&mut r).unwrap(), TwoBit::STRONG_T);
        assert_eq!(TwoBit::load(&mut r).unwrap_err().code, "E0018");
    }

    #[test]
    fn table_size_validated() {
        let d = CounterTable::new(12).unwrap_err();
        assert_eq!(d.code, "E0001");
        assert!(d.message.contains("power of two"));
        assert_eq!(CounterTable::new(0).unwrap_err().code, "E0001");
    }
}
