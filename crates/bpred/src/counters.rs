//! Saturating counters — the basic state element of direction predictors.

use smt_isa::Diagnostic;

/// A 2-bit saturating counter.
///
/// States 0–1 predict not-taken, 2–3 predict taken. New counters start
/// weakly taken (2), which favours the loop branches that dominate dynamic
/// conditional branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TwoBit(u8);

impl TwoBit {
    /// Strongly not-taken.
    pub const STRONG_NT: TwoBit = TwoBit(0);
    /// Weakly not-taken.
    pub const WEAK_NT: TwoBit = TwoBit(1);
    /// Weakly taken.
    pub const WEAK_T: TwoBit = TwoBit(2);
    /// Strongly taken.
    pub const STRONG_T: TwoBit = TwoBit(3);

    /// Creates a counter in the given state (clamped to 0..=3).
    pub fn new(state: u8) -> Self {
        TwoBit(state.min(3))
    }

    /// The predicted direction.
    pub fn taken(self) -> bool {
        self.0 >= 2
    }

    /// Whether the counter is in a saturated (strong) state.
    pub fn is_strong(self) -> bool {
        self.0 == 0 || self.0 == 3
    }

    /// Trains the counter toward the actual outcome.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// Raw state, 0..=3.
    pub fn state(self) -> u8 {
        self.0
    }
}

impl Default for TwoBit {
    fn default() -> Self {
        TwoBit::WEAK_T
    }
}

/// A table of 2-bit counters of power-of-two size.
#[derive(Clone, Debug)]
pub struct CounterTable {
    counters: Vec<TwoBit>,
    mask: u64,
}

impl CounterTable {
    /// Creates a table with `entries` counters.
    ///
    /// # Errors
    ///
    /// `E0001` if `entries` is not a power of two (zero included).
    pub fn new(entries: usize) -> Result<Self, Diagnostic> {
        if !entries.is_power_of_two() {
            return Err(Diagnostic::error(
                "E0001",
                "entries",
                format!("counter-table size must be a power of two (got {entries})"),
                "round the table size to a power of two",
            ));
        }
        Ok(CounterTable {
            counters: vec![TwoBit::default(); entries],
            mask: entries as u64 - 1,
        })
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table is empty (never: construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The counter at `index` (wrapped into range).
    pub fn get(&self, index: u64) -> TwoBit {
        self.counters[(index & self.mask) as usize]
    }

    /// Trains the counter at `index` (wrapped into range).
    pub fn update(&mut self, index: u64, taken: bool) {
        self.counters[(index & self.mask) as usize].update(taken);
    }

    /// Index mask (`len - 1`).
    pub fn mask(&self) -> u64 {
        self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_saturates_both_ends() {
        let mut c = TwoBit::STRONG_NT;
        c.update(false);
        assert_eq!(c, TwoBit::STRONG_NT);
        c.update(true);
        assert_eq!(c, TwoBit::WEAK_NT);
        c.update(true);
        c.update(true);
        assert_eq!(c, TwoBit::STRONG_T);
        c.update(true);
        assert_eq!(c, TwoBit::STRONG_T);
    }

    #[test]
    fn two_bit_hysteresis() {
        // A single anomalous not-taken outcome must not flip a strong-taken
        // counter's prediction.
        let mut c = TwoBit::STRONG_T;
        c.update(false);
        assert!(c.taken());
        c.update(false);
        assert!(!c.taken());
    }

    #[test]
    fn default_is_weakly_taken() {
        assert_eq!(TwoBit::default(), TwoBit::WEAK_T);
        assert!(TwoBit::default().taken());
        assert!(!TwoBit::default().is_strong());
    }

    #[test]
    fn new_clamps() {
        assert_eq!(TwoBit::new(9), TwoBit::STRONG_T);
    }

    #[test]
    fn table_wraps_indices() {
        let mut t = CounterTable::new(16).unwrap();
        assert_eq!(t.len(), 16);
        t.update(3, false);
        t.update(3 + 16, false);
        assert!(!t.get(3).taken());
        assert_eq!(t.get(3), t.get(19));
    }

    #[test]
    fn table_size_validated() {
        let d = CounterTable::new(12).unwrap_err();
        assert_eq!(d.code, "E0001");
        assert!(d.message.contains("power of two"));
        assert_eq!(CounterTable::new(0).unwrap_err().code, "E0001");
    }
}
