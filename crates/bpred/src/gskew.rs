//! The gskew conditional-branch direction predictor
//! (Michaud, Seznec & Uhlig, ISCA 1997).

use smt_isa::{Addr, Diagnostic, SnapReader, SnapWriter};

use crate::counters::CounterTable;
use crate::history::GlobalHistory;

/// Number of banks in the skewed predictor.
const BANKS: usize = 3;

/// Per-bank index-decorrelation salts. The original design uses skewing
/// functions built from GF(2) shuffles of `(pc, history)`; we use three
/// independent avalanche-quality hashes, which have the same statistical
/// property the scheme relies on — two branches that conflict in one bank
/// almost never conflict in the others.
const SALTS: [u64; BANKS] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
];

/// gskew: three counter banks read through decorrelated hashes of
/// `(pc, history)`; the prediction is a 2-of-3 majority vote, so a conflict
/// alias in any single bank is outvoted.
///
/// Update policy (Michaud et al.'s *partial update*):
/// * on a correct prediction, only the banks that agreed with the final
///   (majority) prediction are strengthened;
/// * on a misprediction, all banks are trained toward the actual outcome.
///
/// The paper pairs a 3 × 32K-entry gskew with 15 bits of history and the FTB
/// (Table 3), which [`Gskew::hpca2004`] reproduces. Each bank is a
/// bit-packed [`CounterTable`] (32 counters per `u64`), so the three
/// hpca2004 banks together occupy 24 KB of host memory rather than 96 KB.
#[derive(Clone, Debug)]
pub struct Gskew {
    banks: [CounterTable; BANKS],
    predictions: u64,
    correct: u64,
}

impl Gskew {
    /// Creates a gskew predictor with `entries_per_bank` counters per bank.
    ///
    /// # Errors
    ///
    /// `E0001` if `entries_per_bank` is not a power of two.
    pub fn new(entries_per_bank: usize) -> Result<Self, Diagnostic> {
        let bank = || {
            CounterTable::new(entries_per_bank).map_err(|d| d.in_field("gskew_entries_per_bank"))
        };
        Ok(Gskew {
            banks: [bank()?, bank()?, bank()?],
            predictions: 0,
            correct: 0,
        })
    }

    /// The paper's configuration: 3 banks of 32K entries, 15-bit history.
    pub fn hpca2004() -> Self {
        Gskew::new(32 * 1024).expect("preset geometry is valid") // lint:allow(no-panic): preset geometry is valid by construction
    }

    fn index(&self, bank: usize, pc: Addr, history: GlobalHistory) -> u64 {
        let x = (pc.raw() >> 2) ^ (history.bits() << 17) ^ SALTS[bank];
        // splitmix64 finalizer for avalanche.
        // lint:allow(no-lossy-cast): bank < BANKS = 3, fits any width
        let mut z = x.wrapping_add(SALTS[bank].rotate_left(bank as u32 * 21));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The three banks' individual votes for `(pc, history)`.
    pub fn votes(&self, pc: Addr, history: GlobalHistory) -> [bool; BANKS] {
        let mut v = [false; BANKS];
        for (b, vote) in v.iter_mut().enumerate() {
            *vote = self.banks[b].get(self.index(b, pc, history)).taken();
        }
        v
    }

    /// Predicts the direction of the conditional branch at `pc` by majority
    /// vote.
    pub fn predict(&mut self, pc: Addr, history: GlobalHistory) -> bool {
        self.predictions += 1;
        let v = self.votes(pc, history);
        (u8::from(v[0]) + u8::from(v[1]) + u8::from(v[2])) >= 2
    }

    /// Trains the predictor with a resolved branch (partial update).
    ///
    /// `history` must be the checkpointed prediction-time history.
    pub fn update(&mut self, pc: Addr, history: GlobalHistory, taken: bool) {
        let votes = self.votes(pc, history);
        let majority = (u8::from(votes[0]) + u8::from(votes[1]) + u8::from(votes[2])) >= 2;
        if majority == taken {
            self.correct += 1;
            // Partial update: strengthen only the agreeing banks.
            for (b, &vote) in votes.iter().enumerate() {
                if vote == majority {
                    let idx = self.index(b, pc, history);
                    self.banks[b].update(idx, taken);
                }
            }
        } else {
            // Misprediction: retrain all banks.
            for b in 0..BANKS {
                let idx = self.index(b, pc, history);
                self.banks[b].update(idx, taken);
            }
        }
    }

    /// `(predictions, correct-at-update)` counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.correct)
    }

    /// Total number of 2-bit counters across banks.
    pub fn entries(&self) -> usize {
        self.banks.iter().map(|b| b.len()).sum()
    }

    /// Hardware budget in bytes (2 bits per entry).
    pub fn budget_bytes(&self) -> usize {
        self.entries() / 4
    }

    /// Serializes all three counter banks and accuracy statistics.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for bank in &self.banks {
            bank.save_state(w);
        }
        w.u64(self.predictions);
        w.u64(self.correct);
    }

    /// Restores state saved by [`Gskew::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` on geometry mismatch or a malformed byte stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        for bank in &mut self.banks {
            bank.load_state(r)?;
        }
        self.predictions = r.u64()?;
        self.correct = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        let mut g = Gskew::new(1024).unwrap();
        let pc = Addr::new(0x8000);
        let h = GlobalHistory::new(15);
        for _ in 0..10 {
            g.update(pc, h, false);
        }
        assert!(!g.predict(pc, h));
    }

    #[test]
    fn majority_vote_outvotes_a_poisoned_bank() {
        let mut g = Gskew::new(1 << 12).unwrap();
        let h = GlobalHistory::new(15);
        let victim = Addr::new(0x4000);
        // Train the victim taken.
        for _ in 0..4 {
            g.update(victim, h, true);
        }
        assert!(g.predict(victim, h));
        // Poison bank 0's counter for the victim by hammering an alias that
        // shares bank 0's index (construct by brute force).
        let idx0 = g.index(0, victim, h) & g.banks[0].mask();
        let mut alias = None;
        for raw in (0u64..4_000_000).map(|i| 0x10_0000 + i * 4) {
            let a = Addr::new(raw);
            if a == victim {
                continue;
            }
            let same0 = (g.index(0, a, h) & g.banks[0].mask()) == idx0;
            let diff1 = (g.index(1, a, h) & g.banks[1].mask())
                != (g.index(1, victim, h) & g.banks[1].mask());
            let diff2 = (g.index(2, a, h) & g.banks[2].mask())
                != (g.index(2, victim, h) & g.banks[2].mask());
            if same0 && diff1 && diff2 {
                alias = Some(a);
                break;
            }
        }
        let alias = alias.expect("no single-bank alias found");
        for _ in 0..8 {
            g.update(alias, h, false);
        }
        // The alias weakened the shared bank-0 counter (aliasing happened),
        // but partial update stopped hammering it once the alias's other
        // banks learned not-taken, and the majority still predicts taken.
        let idx0_full = g.index(0, victim, h);
        assert!(
            g.banks[0].get(idx0_full).state() < 3,
            "alias never touched the shared counter"
        );
        assert!(
            g.predict(victim, h),
            "majority vote failed to outvote alias"
        );
        // The victim's own banks 1 and 2 are untouched.
        let votes = g.votes(victim, h);
        assert!(votes[1] && votes[2]);
    }

    #[test]
    fn partial_update_leaves_disagreeing_bank_for_its_own_branch() {
        let mut g = Gskew::new(1024).unwrap();
        let pc = Addr::new(0xc000);
        let h = GlobalHistory::new(15);
        // All banks default to weak-taken; a taken outcome with the partial
        // policy strengthens all three (all agree with majority).
        g.update(pc, h, true);
        assert_eq!(g.votes(pc, h), [true, true, true]);
        // A not-taken outcome is a misprediction: all banks weaken.
        g.update(pc, h, false);
        g.update(pc, h, false);
        g.update(pc, h, false);
        assert!(!g.predict(pc, h));
    }

    #[test]
    fn hpca_configuration_sizes() {
        let g = Gskew::hpca2004();
        assert_eq!(g.entries(), 3 * 32 * 1024);
        assert_eq!(g.budget_bytes(), 24 * 1024);
    }

    #[test]
    fn indices_are_decorrelated_across_banks() {
        let g = Gskew::new(1 << 15).unwrap();
        let h = GlobalHistory::new(15);
        let mask = g.banks[0].mask();
        let mut collisions = [0u32; 3];
        let base = Addr::new(0x40_0000);
        let others: Vec<Addr> = (1..2000u64).map(|i| Addr::new(0x40_0000 + i * 4)).collect();
        for &a in &others {
            for (b, slot) in collisions.iter_mut().enumerate() {
                if (g.index(b, a, h) & mask) == (g.index(b, base, h) & mask) {
                    *slot += 1;
                }
            }
        }
        // With 32K entries and 2000 probes, expected collisions per bank is
        // well under 1; allow a little slack.
        for (b, &c) in collisions.iter().enumerate() {
            assert!(c <= 2, "bank {b} had {c} collisions");
        }
    }
}
