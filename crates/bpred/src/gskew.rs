//! The gskew conditional-branch direction predictor
//! (Michaud, Seznec & Uhlig, ISCA 1997).

use smt_isa::{Addr, Diagnostic, SnapReader, SnapWriter};

use crate::counters::{CounterTable, TwoBit};
use crate::history::GlobalHistory;

/// Number of banks in the skewed predictor.
const BANKS: usize = 3;

/// Per-bank index-decorrelation salts. The original design uses skewing
/// functions built from GF(2) shuffles of `(pc, history)`; we use three
/// independent avalanche-quality hashes, which have the same statistical
/// property the scheme relies on — two branches that conflict in one bank
/// almost never conflict in the others.
const SALTS: [u64; BANKS] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
];

/// gskew: three counter banks read through decorrelated hashes of
/// `(pc, history)`; the prediction is a 2-of-3 majority vote, so a conflict
/// alias in any single bank is outvoted.
///
/// Update policy (Michaud et al.'s *partial update*):
/// * on a correct prediction, only the banks that agreed with the final
///   (majority) prediction are strengthened;
/// * on a misprediction, all banks are trained toward the actual outcome.
///
/// The paper pairs a 3 × 32K-entry gskew with 15 bits of history and the FTB
/// (Table 3), which [`Gskew::hpca2004`] reproduces. Each bank is a
/// bit-packed [`CounterTable`] (32 counters per `u64`), so the three
/// hpca2004 banks together occupy 24 KB of host memory rather than 96 KB.
#[derive(Clone, Debug)]
pub struct Gskew {
    banks: [CounterTable; BANKS],
    predictions: u64,
    correct: u64,
}

/// One batched read of all three gskew banks for a single `(pc, history)`
/// lookup: the three decorrelated indices and the three counters they
/// addressed, captured together by [`Gskew::probe`].
///
/// A probe is valid for [`Gskew::predict_with`] and [`Gskew::update_with`]
/// only while no bank has been written since it was taken; within one
/// front-end block prediction or one branch training that always holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GskewProbe {
    indices: [u64; BANKS],
    counters: [TwoBit; BANKS],
}

impl GskewProbe {
    /// The three banks' individual votes.
    pub fn votes(&self) -> [bool; BANKS] {
        [
            self.counters[0].taken(),
            self.counters[1].taken(),
            self.counters[2].taken(),
        ]
    }

    /// The 2-of-3 majority direction.
    pub fn taken(&self) -> bool {
        let v = self.votes();
        (u8::from(v[0]) + u8::from(v[1]) + u8::from(v[2])) >= 2
    }
}

impl Gskew {
    /// Creates a gskew predictor with `entries_per_bank` counters per bank.
    ///
    /// # Errors
    ///
    /// `E0001` if `entries_per_bank` is not a power of two.
    pub fn new(entries_per_bank: usize) -> Result<Self, Diagnostic> {
        let bank = || {
            CounterTable::new(entries_per_bank).map_err(|d| d.in_field("gskew_entries_per_bank"))
        };
        Ok(Gskew {
            banks: [bank()?, bank()?, bank()?],
            predictions: 0,
            correct: 0,
        })
    }

    /// The paper's configuration: 3 banks of 32K entries, 15-bit history.
    pub fn hpca2004() -> Self {
        Gskew::new(32 * 1024).expect("preset geometry is valid") // lint:allow(no-panic): preset geometry is valid by construction
    }

    fn index(&self, bank: usize, pc: Addr, history: GlobalHistory) -> u64 {
        let x = (pc.raw() >> 2) ^ (history.bits() << 17) ^ SALTS[bank];
        // splitmix64 finalizer for avalanche.
        // lint:allow(no-lossy-cast): bank < BANKS = 3, fits any width
        let mut z = x.wrapping_add(SALTS[bank].rotate_left(bank as u32 * 21));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// All three decorrelated bank indices for `(pc, history)`, computed
    /// together so the shared `(pc, history)` mix is staged once.
    fn indices(&self, pc: Addr, history: GlobalHistory) -> [u64; BANKS] {
        [
            self.index(0, pc, history),
            self.index(1, pc, history),
            self.index(2, pc, history),
        ]
    }

    /// Issues the batched three-bank read for one `(pc, history)` lookup.
    ///
    /// The three decorrelated indices are computed together and the three
    /// packed-word reads issue together; the returned probe carries both, so
    /// a predicted block's direction lookup and its later training each cost
    /// exactly one probe instead of interleaved per-bank index/read pairs.
    pub fn probe(&self, pc: Addr, history: GlobalHistory) -> GskewProbe {
        let indices = self.indices(pc, history);
        let counters = [
            self.banks[0].get(indices[0]),
            self.banks[1].get(indices[1]),
            self.banks[2].get(indices[2]),
        ];
        GskewProbe { indices, counters }
    }

    /// The three banks' individual votes for `(pc, history)`.
    pub fn votes(&self, pc: Addr, history: GlobalHistory) -> [bool; BANKS] {
        self.probe(pc, history).votes()
    }

    /// Records and returns the majority prediction carried by `probe`.
    pub fn predict_with(&mut self, probe: &GskewProbe) -> bool {
        self.predictions += 1;
        probe.taken()
    }

    /// Predicts the direction of the conditional branch at `pc` by majority
    /// vote.
    pub fn predict(&mut self, pc: Addr, history: GlobalHistory) -> bool {
        let probe = self.probe(pc, history);
        self.predict_with(&probe)
    }

    /// Trains the predictor from a probe taken against the current table
    /// state (partial update).
    ///
    /// The probe's registered counter values stand in for re-reads: each
    /// trained bank is written back with [`CounterTable::set`], so training
    /// costs the one batched read in [`Gskew::probe`] plus at most three
    /// word writes. The probe must not be stale — no bank may have been
    /// written between the probe and this call.
    pub fn update_with(&mut self, probe: &GskewProbe, taken: bool) {
        let votes = probe.votes();
        let majority = probe.taken();
        let trained = |c: TwoBit| {
            let mut c = c;
            c.update(taken);
            c
        };
        if majority == taken {
            self.correct += 1;
            // Partial update: strengthen only the agreeing banks.
            for (b, &vote) in votes.iter().enumerate() {
                if vote == majority {
                    self.banks[b].set(probe.indices[b], trained(probe.counters[b]));
                }
            }
        } else {
            // Misprediction: retrain all banks.
            for b in 0..BANKS {
                self.banks[b].set(probe.indices[b], trained(probe.counters[b]));
            }
        }
    }

    /// Trains the predictor with a resolved branch (partial update).
    ///
    /// `history` must be the checkpointed prediction-time history.
    pub fn update(&mut self, pc: Addr, history: GlobalHistory, taken: bool) {
        let probe = self.probe(pc, history);
        self.update_with(&probe, taken);
    }

    /// `(predictions, correct-at-update)` counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.correct)
    }

    /// Total number of 2-bit counters across banks.
    pub fn entries(&self) -> usize {
        self.banks.iter().map(|b| b.len()).sum()
    }

    /// Hardware budget in bytes (2 bits per entry).
    pub fn budget_bytes(&self) -> usize {
        self.entries() / 4
    }

    /// Serializes all three counter banks and accuracy statistics.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for bank in &self.banks {
            bank.save_state(w);
        }
        w.u64(self.predictions);
        w.u64(self.correct);
    }

    /// Restores state saved by [`Gskew::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` on geometry mismatch or a malformed byte stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        for bank in &mut self.banks {
            bank.load_state(r)?;
        }
        self.predictions = r.u64()?;
        self.correct = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        let mut g = Gskew::new(1024).unwrap();
        let pc = Addr::new(0x8000);
        let h = GlobalHistory::new(15);
        for _ in 0..10 {
            g.update(pc, h, false);
        }
        assert!(!g.predict(pc, h));
    }

    #[test]
    fn majority_vote_outvotes_a_poisoned_bank() {
        let mut g = Gskew::new(1 << 12).unwrap();
        let h = GlobalHistory::new(15);
        let victim = Addr::new(0x4000);
        // Train the victim taken.
        for _ in 0..4 {
            g.update(victim, h, true);
        }
        assert!(g.predict(victim, h));
        // Poison bank 0's counter for the victim by hammering an alias that
        // shares bank 0's index (construct by brute force).
        let idx0 = g.index(0, victim, h) & g.banks[0].mask();
        let mut alias = None;
        for raw in (0u64..4_000_000).map(|i| 0x10_0000 + i * 4) {
            let a = Addr::new(raw);
            if a == victim {
                continue;
            }
            let same0 = (g.index(0, a, h) & g.banks[0].mask()) == idx0;
            let diff1 = (g.index(1, a, h) & g.banks[1].mask())
                != (g.index(1, victim, h) & g.banks[1].mask());
            let diff2 = (g.index(2, a, h) & g.banks[2].mask())
                != (g.index(2, victim, h) & g.banks[2].mask());
            if same0 && diff1 && diff2 {
                alias = Some(a);
                break;
            }
        }
        let alias = alias.expect("no single-bank alias found");
        for _ in 0..8 {
            g.update(alias, h, false);
        }
        // The alias weakened the shared bank-0 counter (aliasing happened),
        // but partial update stopped hammering it once the alias's other
        // banks learned not-taken, and the majority still predicts taken.
        let idx0_full = g.index(0, victim, h);
        assert!(
            g.banks[0].get(idx0_full).state() < 3,
            "alias never touched the shared counter"
        );
        assert!(
            g.predict(victim, h),
            "majority vote failed to outvote alias"
        );
        // The victim's own banks 1 and 2 are untouched.
        let votes = g.votes(victim, h);
        assert!(votes[1] && votes[2]);
    }

    #[test]
    fn partial_update_leaves_disagreeing_bank_for_its_own_branch() {
        let mut g = Gskew::new(1024).unwrap();
        let pc = Addr::new(0xc000);
        let h = GlobalHistory::new(15);
        // All banks default to weak-taken; a taken outcome with the partial
        // policy strengthens all three (all agree with majority).
        g.update(pc, h, true);
        assert_eq!(g.votes(pc, h), [true, true, true]);
        // A not-taken outcome is a misprediction: all banks weaken.
        g.update(pc, h, false);
        g.update(pc, h, false);
        g.update(pc, h, false);
        assert!(!g.predict(pc, h));
    }

    #[test]
    fn batched_probe_matches_scalar_path() {
        // Driving one predictor through the probe API and a twin through the
        // scalar predict/update calls must keep them bit-identical: the
        // probe is a batching of the same reads, not a different predictor.
        let mut a = Gskew::new(1024).unwrap();
        let mut b = Gskew::new(1024).unwrap();
        let h = GlobalHistory::new(15);
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..2000u64 {
            s = s
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let pc = Addr::new(((s >> 16) & 0xffff) * 4);
            let taken = s & 1 == 0;
            let p = a.probe(pc, h);
            let pa = a.predict_with(&p);
            // predict_with never writes a bank, so the probe is still fresh.
            a.update_with(&p, taken);
            let pb = b.predict(pc, h);
            b.update(pc, h, taken);
            assert_eq!(pa, pb, "prediction diverged at step {i}");
            assert_eq!(a.stats(), b.stats(), "stats diverged at step {i}");
        }
        assert_eq!(a.votes(Addr::new(0x40), h), b.votes(Addr::new(0x40), h));
    }

    #[test]
    fn hpca_configuration_sizes() {
        let g = Gskew::hpca2004();
        assert_eq!(g.entries(), 3 * 32 * 1024);
        assert_eq!(g.budget_bytes(), 24 * 1024);
    }

    #[test]
    fn indices_are_decorrelated_across_banks() {
        let g = Gskew::new(1 << 15).unwrap();
        let h = GlobalHistory::new(15);
        let mask = g.banks[0].mask();
        let mut collisions = [0u32; 3];
        let base = Addr::new(0x40_0000);
        let others: Vec<Addr> = (1..2000u64).map(|i| Addr::new(0x40_0000 + i * 4)).collect();
        for &a in &others {
            for (b, slot) in collisions.iter_mut().enumerate() {
                if (g.index(b, a, h) & mask) == (g.index(b, base, h) & mask) {
                    *slot += 1;
                }
            }
        }
        // With 32K entries and 2000 probes, expected collisions per bank is
        // well under 1; allow a little slack.
        for (b, &c) in collisions.iter().enumerate() {
            assert!(c <= 2, "bank {b} had {c} collisions");
        }
    }
}
