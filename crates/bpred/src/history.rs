//! Per-thread speculative branch-history registers.
//!
//! An SMT front-end keeps one global-history register per thread (paper §1:
//! "a return address stack and a branch history register are needed for each
//! thread"). History is updated *speculatively* at prediction time and must
//! be restored on a misprediction; [`GlobalHistory`] is a plain value type,
//! so a checkpoint is just a copy.

use smt_isa::{snap_mismatch, Diagnostic, Snap, SnapReader, SnapWriter};

/// A global branch-history register of up to 64 bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct GlobalHistory {
    bits: u64,
    len: u32,
}

impl GlobalHistory {
    /// Creates an empty history of `len` bits (1 ..= 64).
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or greater than 64.
    pub fn new(len: u32) -> Self {
        assert!((1..=64).contains(&len), "history length must be 1..=64");
        GlobalHistory { bits: 0, len }
    }

    /// History length in bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether no outcomes have been shifted in yet *and* the register is
    /// all-zero (indistinguishable from a run of not-taken outcomes).
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// The history bits (low `len` bits valid).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Shifts in one branch outcome (speculatively, at prediction time).
    pub fn push(&mut self, taken: bool) {
        let mask = if self.len == 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        };
        self.bits = ((self.bits << 1) | taken as u64) & mask;
    }

    /// Restores the register from a checkpoint taken before a mispredicted
    /// branch, then applies that branch's actual outcome.
    pub fn restore_and_fix(&mut self, checkpoint: GlobalHistory, actual_taken: bool) {
        *self = checkpoint;
        self.push(actual_taken);
    }
}

impl Snap for GlobalHistory {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.bits);
        w.u32(self.len);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        let bits = r.u64()?;
        let len = r.u32()?;
        if !(1..=64).contains(&len) {
            return Err(snap_mismatch(
                "global history",
                format!("history length {len} out of range 1..=64"),
            ));
        }
        let mask = if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        if bits & !mask != 0 {
            return Err(snap_mismatch(
                "global history",
                format!("history bits {bits:#x} exceed the {len}-bit register"),
            ));
        }
        Ok(GlobalHistory { bits, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trip_and_validation() {
        let mut h = GlobalHistory::new(12);
        h.push(true);
        h.push(false);
        h.push(true);
        let mut w = SnapWriter::new();
        h.save(&mut w);
        let back = GlobalHistory::load(&mut SnapReader::new(&w.into_bytes())).unwrap();
        assert_eq!(back, h);

        let mut bad = SnapWriter::new();
        bad.u64(0xFF); // bits exceed a 4-bit register
        bad.u32(4);
        let err = GlobalHistory::load(&mut SnapReader::new(&bad.into_bytes())).unwrap_err();
        assert_eq!(err.code, "E0018");

        let mut zero = SnapWriter::new();
        zero.u64(0);
        zero.u32(0);
        let err = GlobalHistory::load(&mut SnapReader::new(&zero.into_bytes())).unwrap_err();
        assert_eq!(err.code, "E0018");
    }

    #[test]
    fn push_shifts_and_masks() {
        let mut h = GlobalHistory::new(4);
        h.push(true);
        h.push(false);
        h.push(true);
        assert_eq!(h.bits(), 0b101);
        h.push(true);
        h.push(true);
        // Oldest bit (the first `true`) has been shifted out of 4 bits.
        assert_eq!(h.bits(), 0b0111);
    }

    #[test]
    fn full_width_history_works() {
        let mut h = GlobalHistory::new(64);
        for _ in 0..100 {
            h.push(true);
        }
        assert_eq!(h.bits(), u64::MAX);
    }

    #[test]
    fn checkpoint_restore_fixes_the_mispredicted_outcome() {
        let mut h = GlobalHistory::new(8);
        h.push(true);
        h.push(true);
        let ckpt = h; // checkpoint before predicting the branch
        h.push(false); // speculative (wrong) outcome
        h.push(true); // younger speculative branch
        h.restore_and_fix(ckpt, true); // branch actually taken
        assert_eq!(h.bits(), 0b111);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn zero_length_rejected() {
        let _ = GlobalHistory::new(0);
    }

    #[test]
    fn is_empty_reflects_bits() {
        let mut h = GlobalHistory::new(8);
        assert!(h.is_empty());
        h.push(true);
        assert!(!h.is_empty());
    }
}
