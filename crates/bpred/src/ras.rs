//! Return address stack with low-cost misspeculation repair.

use smt_isa::{snap_mismatch, Addr, Diagnostic, Snap, SnapReader, SnapWriter};

/// A circular return-address stack, one per hardware thread (Table 3 marks
/// the 64-entry RAS as replicated per thread).
///
/// The RAS is updated *speculatively* at prediction time (calls push, return
/// predictions pop). Recovery uses the classical low-cost scheme: each
/// checkpoint saves the top-of-stack index and the entry it points at; on a
/// squash the pair is written back. This repairs the overwhelmingly common
/// single-push/single-pop wrong paths; deeper wrong-path call chains can
/// still corrupt older entries, exactly as in the equivalent hardware.
#[derive(Clone, Debug)]
pub struct ReturnStack {
    entries: Vec<Addr>,
    /// Index of the current top (valid when `depth > 0`).
    top: usize,
    /// Logical depth, saturating at capacity (circular overwrite).
    depth: usize,
    pushes: u64,
    pops: u64,
}

/// A repair checkpoint: captures the stack's top state at prediction time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RasCheckpoint {
    top: usize,
    depth: usize,
    top_value: Addr,
}

impl Snap for RasCheckpoint {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.top);
        w.usize(self.depth);
        self.top_value.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(RasCheckpoint {
            top: r.usize()?,
            depth: r.usize()?,
            top_value: Addr::load(r)?,
        })
    }
}

impl ReturnStack {
    /// Creates a stack with `capacity` entries.
    ///
    /// # Errors
    ///
    /// `E0013` if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, Diagnostic> {
        if capacity == 0 {
            return Err(Diagnostic::error(
                "E0013",
                "ras_depth",
                "return-address stack capacity must be positive",
                "the paper uses a 64-entry RAS per thread",
            ));
        }
        Ok(ReturnStack {
            entries: vec![Addr::NULL; capacity],
            top: capacity - 1,
            depth: 0,
            pushes: 0,
            pops: 0,
        })
    }

    /// The paper's configuration: 64 entries.
    pub fn hpca2004() -> Self {
        ReturnStack::new(64).expect("preset geometry is valid") // lint:allow(no-panic): preset geometry is valid by construction
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Current logical depth (saturates at capacity).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Pushes a return address (call predicted/observed).
    pub fn push(&mut self, ret: Addr) {
        self.pushes += 1;
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = ret;
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the predicted return target.
    ///
    /// An empty stack returns [`Addr::NULL`] (the front-end then falls
    /// through, which resolves as a misprediction — like hardware reading a
    /// garbage entry).
    pub fn pop(&mut self) -> Addr {
        self.pops += 1;
        if self.depth == 0 {
            return Addr::NULL;
        }
        let v = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        v
    }

    /// Reads the top without popping.
    pub fn peek(&self) -> Option<Addr> {
        if self.depth == 0 {
            None
        } else {
            Some(self.entries[self.top])
        }
    }

    /// Takes a repair checkpoint of the current top state.
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint {
            top: self.top,
            depth: self.depth,
            top_value: self.entries[self.top],
        }
    }

    /// Restores a checkpoint taken before a squashed speculation region.
    pub fn restore(&mut self, ckpt: RasCheckpoint) {
        self.top = ckpt.top;
        self.depth = ckpt.depth;
        self.entries[self.top] = ckpt.top_value;
    }

    /// `(pushes, pops)` counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.pushes, self.pops)
    }

    /// Serializes every entry (stale circular slots included, so a restored
    /// stack re-snapshots byte-identically) plus top/depth and statistics.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.entries.len());
        for e in &self.entries {
            e.save(w);
        }
        w.usize(self.top);
        w.usize(self.depth);
        w.u64(self.pushes);
        w.u64(self.pops);
    }

    /// Restores state saved by [`ReturnStack::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` if the stored capacity differs from this stack's, the stored
    /// indices are out of range, or the byte stream is malformed.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        let cap = r.usize()?;
        if cap != self.entries.len() {
            return Err(snap_mismatch(
                "ras capacity",
                format!(
                    "snapshot has {cap} entries, stack has {}",
                    self.entries.len()
                ),
            ));
        }
        for e in &mut self.entries {
            *e = Addr::load(r)?;
        }
        let top = r.usize()?;
        let depth = r.usize()?;
        if top >= cap || depth > cap {
            return Err(snap_mismatch(
                "ras cursor",
                format!("top {top} / depth {depth} out of range for capacity {cap}"),
            ));
        }
        self.top = top;
        self.depth = depth;
        self.pushes = r.u64()?;
        self.pops = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = ReturnStack::new(8).unwrap();
        s.push(Addr::new(0x10));
        s.push(Addr::new(0x20));
        s.push(Addr::new(0x30));
        assert_eq!(s.pop(), Addr::new(0x30));
        assert_eq!(s.pop(), Addr::new(0x20));
        assert_eq!(s.pop(), Addr::new(0x10));
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn empty_pop_returns_null() {
        let mut s = ReturnStack::new(4).unwrap();
        assert_eq!(s.pop(), Addr::NULL);
        assert!(s.peek().is_none());
    }

    #[test]
    fn circular_overwrite_keeps_recent_entries() {
        let mut s = ReturnStack::new(4).unwrap();
        for i in 1..=6u64 {
            s.push(Addr::new(i * 0x10));
        }
        // Entries 5 and 6 are the two most recent; 1 and 2 were overwritten.
        assert_eq!(s.pop(), Addr::new(0x60));
        assert_eq!(s.pop(), Addr::new(0x50));
        assert_eq!(s.pop(), Addr::new(0x40));
        assert_eq!(s.pop(), Addr::new(0x30));
        // Depth exhausted even though old slots contain stale data.
        assert_eq!(s.pop(), Addr::NULL);
    }

    #[test]
    fn checkpoint_repairs_push_pop_speculation() {
        let mut s = ReturnStack::new(8).unwrap();
        s.push(Addr::new(0x100));
        s.push(Addr::new(0x200));
        let ckpt = s.checkpoint();

        // Wrong path: pops the top then pushes a bogus frame.
        assert_eq!(s.pop(), Addr::new(0x200));
        s.push(Addr::new(0xbad));

        s.restore(ckpt);
        assert_eq!(s.pop(), Addr::new(0x200));
        assert_eq!(s.pop(), Addr::new(0x100));
    }

    #[test]
    fn checkpoint_repairs_wrong_path_pop_of_top() {
        let mut s = ReturnStack::new(8).unwrap();
        s.push(Addr::new(0x42));
        let ckpt = s.checkpoint();
        let _ = s.pop();
        let _ = s.pop(); // underflow on the wrong path
        s.restore(ckpt);
        assert_eq!(s.peek(), Some(Addr::new(0x42)));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn snapshot_round_trip_preserves_stack_and_checkpoints() {
        let mut s = ReturnStack::new(4).unwrap();
        for i in 1..=6u64 {
            s.push(Addr::new(i * 0x10)); // wraps: stale slots retained
        }
        let _ = s.pop();
        let ckpt = s.checkpoint();

        let mut w = SnapWriter::new();
        s.save_state(&mut w);
        ckpt.save(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = ReturnStack::new(4).unwrap();
        let mut r = SnapReader::new(&bytes);
        fresh.load_state(&mut r).unwrap();
        let ckpt_back = RasCheckpoint::load(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(ckpt_back, ckpt);
        assert_eq!(fresh.stats(), s.stats());
        assert_eq!(fresh.depth(), s.depth());
        // Identical pop sequence, including stale-slot behaviour.
        for _ in 0..5 {
            assert_eq!(fresh.pop(), s.pop());
        }
        // Re-snapshot is byte-identical (stale slots serialized too).
        let mut w2 = SnapWriter::new();
        fresh.save_state(&mut w2);
        let mut w3 = SnapWriter::new();
        s.save_state(&mut w3);
        assert_eq!(w2.into_bytes(), w3.into_bytes());

        let mut wrong = ReturnStack::new(8).unwrap();
        let err = wrong.load_state(&mut SnapReader::new(&bytes)).unwrap_err();
        assert_eq!(err.code, "E0018");
    }

    #[test]
    fn zero_capacity_rejected() {
        let d = ReturnStack::new(0).unwrap_err();
        assert_eq!(d.code, "E0013");
        assert!(d.is_error());
    }
}
