//! The gshare conditional-branch direction predictor (McFarling, 1993).

use smt_isa::{Addr, Diagnostic, SnapReader, SnapWriter};

use crate::counters::{CounterTable, TwoBit};
use crate::history::GlobalHistory;

/// gshare: a single table of 2-bit counters indexed by
/// `PC XOR global-history`.
///
/// The paper's baseline front-end uses a 64K-entry gshare with 16 bits of
/// history (Table 3), which [`Gshare::hpca2004`] reproduces.
#[derive(Clone, Debug)]
pub struct Gshare {
    table: CounterTable,
    predictions: u64,
    correct: u64,
}

impl Gshare {
    /// Creates a gshare predictor with `entries` 2-bit counters.
    ///
    /// # Errors
    ///
    /// `E0001` if `entries` is not a power of two.
    pub fn new(entries: usize) -> Result<Self, Diagnostic> {
        Ok(Gshare {
            table: CounterTable::new(entries).map_err(|d| d.in_field("gshare_entries"))?,
            predictions: 0,
            correct: 0,
        })
    }

    /// The paper's configuration: 64K entries (16-bit index), 16-bit history.
    pub fn hpca2004() -> Self {
        Gshare::new(64 * 1024).expect("preset geometry is valid") // lint:allow(no-panic): preset geometry is valid by construction
    }

    fn index(&self, pc: Addr, history: GlobalHistory) -> u64 {
        (pc.raw() >> 2) ^ history.bits()
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&mut self, pc: Addr, history: GlobalHistory) -> bool {
        self.predictions += 1;
        self.counter(pc, history).taken()
    }

    /// The counter state a `(pc, history)` pair maps to (no statistics).
    pub fn counter(&self, pc: Addr, history: GlobalHistory) -> TwoBit {
        self.table.get(self.index(pc, history))
    }

    /// Trains the predictor with a resolved branch.
    ///
    /// `history` must be the history value used at prediction time
    /// (checkpointed by the front-end), not the current speculative value.
    pub fn update(&mut self, pc: Addr, history: GlobalHistory, taken: bool) {
        let idx = self.index(pc, history);
        if self.table.get(idx).taken() == taken {
            self.correct += 1;
        }
        self.table.update(idx, taken);
    }

    /// `(predictions, correct-at-update)` counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.correct)
    }

    /// Table size in 2-bit counters.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Hardware budget in bytes (2 bits per entry). Since the counter bank
    /// is bit-packed 32-per-u64, this is also the simulator's actual table
    /// footprint — the model budget and the host memory cost coincide.
    pub fn budget_bytes(&self) -> usize {
        self.table.len() / 4
    }

    /// Serializes the counter table and accuracy statistics.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.table.save_state(w);
        w.u64(self.predictions);
        w.u64(self.correct);
    }

    /// Restores state saved by [`Gshare::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` on geometry mismatch or a malformed byte stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.table.load_state(r)?;
        self.predictions = r.u64()?;
        self.correct = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(bits: u64, len: u32) -> GlobalHistory {
        let mut h = GlobalHistory::new(len);
        for i in (0..len).rev() {
            h.push((bits >> i) & 1 == 1);
        }
        h
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut g = Gshare::new(1024).unwrap();
        let pc = Addr::new(0x4000);
        let h = GlobalHistory::new(10);
        for _ in 0..10 {
            g.update(pc, h, false);
        }
        assert!(!g.predict(pc, h));
    }

    #[test]
    fn learns_an_alternating_pattern_through_history() {
        // Outcome = last outcome inverted: gshare keys on history, so the two
        // history values map to different counters and both learn perfectly.
        let mut g = Gshare::new(1 << 14).unwrap();
        let pc = Addr::new(0x1234_5678);
        let mut h = GlobalHistory::new(8);
        let mut correct = 0;
        let mut last = false;
        for i in 0..200 {
            let outcome = !last;
            let pred = g.predict(pc, h);
            if i >= 20 && pred == outcome {
                correct += 1;
            }
            g.update(pc, h, outcome);
            h.push(outcome);
            last = outcome;
        }
        assert!(correct >= 175, "only {correct}/180 correct after warmup");
    }

    #[test]
    fn different_histories_use_different_counters() {
        let g = Gshare::new(1024).unwrap();
        let pc = Addr::new(0x4000);
        let c1 = g.counter(pc, hist(0b1010, 10));
        let c2 = g.counter(pc, hist(0b0101, 10));
        // Same default state, but training one must not affect the other.
        let mut g = g;
        g.update(pc, hist(0b1010, 10), false);
        g.update(pc, hist(0b1010, 10), false);
        assert!(!g.counter(pc, hist(0b1010, 10)).taken());
        assert_eq!(g.counter(pc, hist(0b0101, 10)), c2);
        let _ = c1;
    }

    #[test]
    fn hpca_configuration_sizes() {
        let g = Gshare::hpca2004();
        assert_eq!(g.entries(), 65536);
        assert_eq!(g.budget_bytes(), 16 * 1024);
    }

    #[test]
    fn snapshot_round_trip_preserves_counters_and_stats() {
        use smt_isa::{SnapReader, SnapWriter};
        let mut g = Gshare::new(256).unwrap();
        let h = hist(0b1011_0110, 10);
        for i in 0..40u64 {
            let pc = Addr::new(0x100 + (i % 7) * 4);
            let _ = g.predict(pc, h);
            g.update(pc, h, i % 3 == 0);
        }
        let mut w = SnapWriter::new();
        g.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = Gshare::new(256).unwrap();
        fresh.load_state(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(fresh.stats(), g.stats());
        for i in 0..7u64 {
            let pc = Addr::new(0x100 + i * 4);
            assert_eq!(fresh.counter(pc, h), g.counter(pc, h));
        }
    }

    #[test]
    fn stats_track_accuracy() {
        let mut g = Gshare::new(256).unwrap();
        let pc = Addr::new(0x100);
        let h = GlobalHistory::new(8);
        for _ in 0..8 {
            let _ = g.predict(pc, h);
            g.update(pc, h, true);
        }
        let (preds, correct) = g.stats();
        assert_eq!(preds, 8);
        assert_eq!(correct, 8); // default weak-taken is already correct
    }
}
