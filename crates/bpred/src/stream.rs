//! The stream predictor (Ramirez, Santana, Larriba-Pey & Valero, MICRO 2002).
//!
//! A **stream** is a dynamic sequence of instructions from the target of a
//! taken branch to the next taken branch — it may embed any number of
//! not-taken branches. The stream predictor maps a stream's *start address*
//! (plus path information) to the stream's **length** and the **target** of
//! the taken branch that ends it, so a single prediction describes several
//! basic blocks and no separate direction predictor is needed: the ending
//! branch is taken by definition.
//!
//! This implementation is the paper's cascaded organization (Table 3):
//! a 1K-entry, 4-way first-level table indexed by start address, and a
//! 4K-entry, 4-way second-level table indexed by a **DOLC** path hash
//! (Depth-Older-Last-Current = 16-2-4-10). The second level is allocated
//! only when the first level mispredicts, and wins on a hit.

use smt_isa::{snap_mismatch, Addr, BranchKind, Diagnostic, Snap, SnapReader, SnapWriter};

use crate::assoc::SetAssoc;
use crate::counters::TwoBit;

/// DOLC path-hash parameters: how many older stream starts participate and
/// how many bits each contributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dolc {
    /// Number of older stream starts hashed (the paper uses 16).
    pub depth: u32,
    /// Bits taken from each older start (2).
    pub older_bits: u32,
    /// Bits taken from the most recent start (4).
    pub last_bits: u32,
    /// Bits taken from the current start (10).
    pub current_bits: u32,
}

impl Dolc {
    /// The paper's `16-2-4-10` configuration.
    pub const HPCA2004: Dolc = Dolc {
        depth: 16,
        older_bits: 2,
        last_bits: 4,
        current_bits: 10,
    };
}

/// Maximum path depth storable in a [`StreamPath`].
const MAX_DEPTH: usize = 16;

/// Per-thread path register: the last `MAX_DEPTH` stream start addresses.
///
/// `Copy`, so front-ends checkpoint it per prediction and restore it on a
/// squash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamPath {
    ring: [u32; MAX_DEPTH],
    pos: u8,
}

impl StreamPath {
    /// An empty path.
    pub fn new() -> Self {
        StreamPath {
            ring: [0; MAX_DEPTH],
            pos: 0,
        }
    }

    /// Records the start of a (speculatively) emitted stream.
    pub fn push(&mut self, start: Addr) {
        // lint:allow(no-lossy-cast): MAX_DEPTH = 16 fits u8
        self.pos = (self.pos + 1) % MAX_DEPTH as u8;
        // lint:allow(no-lossy-cast): deliberate 32-bit path compression
        self.ring[self.pos as usize] = (start.raw() >> 2) as u32;
    }

    /// The `i`-th most recent start (0 = most recent), as compressed bits.
    fn recent(&self, i: usize) -> u32 {
        let idx = (self.pos as usize + MAX_DEPTH - (i % MAX_DEPTH)) % MAX_DEPTH;
        self.ring[idx]
    }

    /// DOLC hash of this path combined with the `current` stream start.
    pub fn dolc_hash(&self, current: Addr, dolc: Dolc) -> u64 {
        let mask = |bits: u32| -> u64 {
            if bits >= 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            }
        };
        let mut h = (current.raw() >> 2) & mask(dolc.current_bits);
        let mut shift = dolc.current_bits;
        h ^= (self.recent(0) as u64 & mask(dolc.last_bits)) << (shift % 54);
        shift += dolc.last_bits;
        // lint:allow(no-lossy-cast): MAX_DEPTH = 16 fits u32
        for i in 1..dolc.depth.min(MAX_DEPTH as u32) {
            h ^= (self.recent(i as usize) as u64 & mask(dolc.older_bits)) << (shift % 54);
            shift += dolc.older_bits;
        }
        h
    }
}

impl Default for StreamPath {
    fn default() -> Self {
        StreamPath::new()
    }
}

impl Snap for StreamPath {
    fn save(&self, w: &mut SnapWriter) {
        for v in &self.ring {
            w.u32(*v);
        }
        w.u8(self.pos);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        let mut ring = [0u32; MAX_DEPTH];
        for v in &mut ring {
            *v = r.u32()?;
        }
        let pos = r.u8()?;
        if pos as usize >= MAX_DEPTH {
            return Err(snap_mismatch(
                "stream path",
                format!("ring position {pos} out of range 0..{MAX_DEPTH}"),
            ));
        }
        Ok(StreamPath { ring, pos })
    }
}

/// The taken branch ending a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamEnd {
    /// Branch flavour (returns take their target from the RAS instead).
    pub kind: BranchKind,
    /// Predicted target — the next stream's start.
    pub target: Addr,
}

/// A stream-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct StreamEntry {
    /// Stream length in instructions, including the ending branch.
    len: u32,
    /// Ending branch (`None` for a length-capped sequential chunk).
    end: Option<StreamEnd>,
    /// Replacement hysteresis.
    hyst: TwoBit,
}

impl Snap for StreamEnd {
    fn save(&self, w: &mut SnapWriter) {
        self.kind.save(w);
        self.target.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(StreamEnd {
            kind: BranchKind::load(r)?,
            target: Addr::load(r)?,
        })
    }
}

impl Snap for StreamEntry {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.len);
        self.end.save(w);
        self.hyst.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(StreamEntry {
            len: r.u32()?,
            end: Option::<StreamEnd>::load(r)?,
            hyst: TwoBit::load(r)?,
        })
    }
}

/// The prediction a stream-table hit yields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamPrediction {
    /// Stream length in instructions.
    pub len: u32,
    /// Ending branch (`None`: sequential chunk, fall through).
    pub end: Option<StreamEnd>,
    /// Whether the (path-correlated) second-level table provided it.
    pub from_l2: bool,
}

/// A completed stream, for training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObservedStream {
    /// Length in instructions, including the ending taken branch.
    pub len: u32,
    /// Flavour of the ending branch.
    pub kind: BranchKind,
    /// Actual target of the ending branch.
    pub target: Addr,
}

/// Cascaded stream predictor.
#[derive(Clone, Debug)]
pub struct StreamPredictor {
    l1: SetAssoc<StreamEntry>,
    l2: SetAssoc<StreamEntry>,
    l1_set_bits: u32,
    l2_set_bits: u32,
    dolc: Dolc,
    max_stream: u32,
    l2_allocs: u64,
}

impl StreamPredictor {
    /// Creates a cascaded stream predictor.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`SetAssoc::new`]
    /// (`E0001`/`E0002`), or with `E0012` if `max_stream` is zero.
    pub fn new(
        l1_entries: usize,
        l2_entries: usize,
        ways: usize,
        dolc: Dolc,
        max_stream: u32,
    ) -> Result<Self, Diagnostic> {
        if max_stream == 0 {
            return Err(Diagnostic::error(
                "E0012",
                "max_stream",
                "maximum stream length must be positive",
                "the paper caps streams at 64 instructions",
            ));
        }
        let l1 = SetAssoc::new(l1_entries, ways).map_err(|d| d.in_field("stream_l1_entries"))?;
        let l2 = SetAssoc::new(l2_entries, ways).map_err(|d| d.in_field("stream_l2_entries"))?;
        let l1_set_bits = l1.num_sets().trailing_zeros();
        let l2_set_bits = l2.num_sets().trailing_zeros();
        Ok(StreamPredictor {
            l1,
            l2,
            l1_set_bits,
            l2_set_bits,
            dolc,
            max_stream,
            l2_allocs: 0,
        })
    }

    /// The paper's configuration: 1K-entry + 4K-entry, both 4-way,
    /// DOLC 16-2-4-10, with streams capped at 64 instructions.
    pub fn hpca2004() -> Self {
        // lint:allow(no-panic): preset geometry is valid by construction
        StreamPredictor::new(1024, 4096, 4, Dolc::HPCA2004, 64).expect("preset geometry is valid")
    }

    /// Maximum stream length in instructions.
    pub fn max_stream(&self) -> u32 {
        self.max_stream
    }

    fn l1_set_tag(&self, start: Addr) -> (u64, u64) {
        let word = start.raw() >> 2;
        (word & self.l1.set_mask(), word >> self.l1_set_bits)
    }

    fn l2_set_tag(&self, start: Addr, path: &StreamPath) -> (u64, u64) {
        let h = path.dolc_hash(start, self.dolc);
        // Mix the full start in the tag so distinct streams sharing a DOLC
        // hash rarely alias.
        let tag = (h >> self.l2_set_bits) ^ ((start.raw() >> 2) << 7);
        (h & self.l2.set_mask(), tag)
    }

    /// Predicts the stream starting at `start` under path `path`.
    ///
    /// The path-correlated second level overrides the first on a hit.
    pub fn predict(&mut self, start: Addr, path: &StreamPath) -> Option<StreamPrediction> {
        let (s2, t2) = self.l2_set_tag(start, path);
        if let Some(e) = self.l2.lookup(s2, t2) {
            // A freshly-allocated (unconfirmed) second-level entry does not
            // override the first level until one confirming re-observation.
            if e.hyst.taken() {
                return Some(StreamPrediction {
                    len: e.len,
                    end: e.end,
                    from_l2: true,
                });
            }
        }
        let (s1, t1) = self.l1_set_tag(start);
        self.l1.lookup(s1, t1).map(|e| StreamPrediction {
            len: e.len,
            end: e.end,
            from_l2: false,
        })
    }

    /// Trains both levels with a completed stream.
    ///
    /// `path` must be the path register value *at prediction time*
    /// (checkpointed by the front-end). The second level is allocated only
    /// when the first level existed and mispredicted — the cascade filter.
    pub fn train(&mut self, start: Addr, path: &StreamPath, observed: ObservedStream) {
        let entry = if observed.len > self.max_stream {
            StreamEntry {
                len: self.max_stream,
                end: None,
                hyst: TwoBit::WEAK_T,
            }
        } else {
            StreamEntry {
                len: observed.len,
                end: Some(StreamEnd {
                    kind: observed.kind,
                    target: observed.target,
                }),
                hyst: TwoBit::WEAK_T,
            }
        };
        let matches = |e: &StreamEntry| {
            e.len == entry.len && e.end.map(|x| x.target) == entry.end.map(|x| x.target)
        };

        // Second level: train on hit.
        let (s2, t2) = self.l2_set_tag(start, path);
        if let Some(e) = self.l2.lookup(s2, t2) {
            if matches(e) {
                e.hyst.update(true);
                if let (Some(end), Some(obs)) = (&mut e.end, entry.end) {
                    end.kind = obs.kind;
                }
            } else if e.hyst.taken() {
                e.hyst.update(false);
            } else {
                *e = StreamEntry {
                    hyst: TwoBit::WEAK_NT,
                    ..entry
                };
            }
        }

        // First level: train; a mispredicting or hysteresis-protected entry
        // triggers a second-level allocation.
        let (s1, t1) = self.l1_set_tag(start);
        match self.l1.lookup(s1, t1) {
            Some(e) if matches(e) => {
                e.hyst.update(true);
                if let (Some(end), Some(obs)) = (&mut e.end, entry.end) {
                    end.kind = obs.kind;
                }
            }
            Some(e) => {
                // L1 disagrees: this start may have path-dependent behaviour.
                // Allocate an *unconfirmed* second-level entry (it becomes
                // predictive only if the same path sees the same stream
                // again), and weaken / eventually replace the first level.
                if self.l2.peek(s2, t2).is_none() {
                    self.l2.insert(
                        s2,
                        t2,
                        StreamEntry {
                            hyst: TwoBit::WEAK_NT,
                            ..entry
                        },
                    );
                    self.l2_allocs += 1;
                }
                if e.hyst.taken() {
                    e.hyst.update(false);
                } else {
                    *e = entry;
                }
            }
            None => {
                self.l1.insert(s1, t1, entry);
            }
        }
    }

    /// `((l1 lookups, l1 hits), (l2 lookups, l2 hits), l2 allocations)`.
    pub fn stats(&self) -> ((u64, u64), (u64, u64), u64) {
        (self.l1.stats(), self.l2.stats(), self.l2_allocs)
    }

    /// Approximate hardware budget in bytes (≈ 13 B per entry).
    pub fn budget_bytes(&self) -> usize {
        (self.l1.num_sets() * self.l1.ways() + self.l2.num_sets() * self.l2.ways()) * 13
    }

    /// Serializes both table levels and the L2 allocation count.
    ///
    /// DOLC parameters and the stream cap are configuration, not state, and
    /// are not written.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.l1.save_state(w);
        self.l2.save_state(w);
        w.u64(self.l2_allocs);
    }

    /// Restores state saved by [`StreamPredictor::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` on geometry mismatch or a malformed byte stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.l1.load_state(r)?;
        self.l2.load_state(r)?;
        self.l2_allocs = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(len: u32, target: u64) -> ObservedStream {
        ObservedStream {
            len,
            kind: BranchKind::Cond,
            target: Addr::new(target),
        }
    }

    #[test]
    fn learns_a_stable_stream() {
        let mut sp = StreamPredictor::new(64, 256, 4, Dolc::HPCA2004, 64).unwrap();
        let start = Addr::new(0x1000);
        let path = StreamPath::new();
        assert!(sp.predict(start, &path).is_none());
        sp.train(start, &path, obs(12, 0x2000));
        let p = sp.predict(start, &path).unwrap();
        assert_eq!(p.len, 12);
        assert_eq!(p.end.unwrap().target, Addr::new(0x2000));
        assert!(!p.from_l2);
    }

    #[test]
    fn long_streams_are_capped() {
        let mut sp = StreamPredictor::new(64, 256, 4, Dolc::HPCA2004, 64).unwrap();
        let start = Addr::new(0x1000);
        let path = StreamPath::new();
        sp.train(start, &path, obs(200, 0x2000));
        let p = sp.predict(start, &path).unwrap();
        assert_eq!(p.len, 64);
        assert!(p.end.is_none());
    }

    #[test]
    fn path_correlated_streams_move_to_l2() {
        let mut sp = StreamPredictor::new(64, 256, 4, Dolc::HPCA2004, 64).unwrap();
        let start = Addr::new(0x1000);
        let mut path_a = StreamPath::new();
        path_a.push(Addr::new(0x5014));
        let mut path_b = StreamPath::new();
        path_b.push(Addr::new(0x9a2c));

        // The same start behaves differently depending on the path.
        for _ in 0..6 {
            sp.train(start, &path_a, obs(8, 0x2000));
            sp.train(start, &path_b, obs(20, 0x3000));
        }
        let pa = sp.predict(start, &path_a).unwrap();
        let pb = sp.predict(start, &path_b).unwrap();
        assert!(pa.from_l2 || pb.from_l2, "cascade never engaged");
        // At least one of the two paths must be predicted exactly right;
        // with L2 engaged both should be.
        if pa.from_l2 {
            assert_eq!(pa.len, 8);
            assert_eq!(pa.end.unwrap().target, Addr::new(0x2000));
        }
        if pb.from_l2 {
            assert_eq!(pb.len, 20);
            assert_eq!(pb.end.unwrap().target, Addr::new(0x3000));
        }
    }

    #[test]
    fn hysteresis_resists_one_off_noise() {
        let mut sp = StreamPredictor::new(64, 256, 4, Dolc::HPCA2004, 64).unwrap();
        let start = Addr::new(0x1000);
        let path = StreamPath::new();
        sp.train(start, &path, obs(12, 0x2000));
        sp.train(start, &path, obs(12, 0x2000));
        sp.train(start, &path, obs(5, 0x7000)); // one-off deviation
        let p = sp.predict(start, &path).unwrap();
        assert_eq!(p.len, 12, "hysteresis should keep the stable stream");
        sp.train(start, &path, obs(5, 0x7000));
        sp.train(start, &path, obs(5, 0x7000));
        let p = sp.predict(start, &path).unwrap();
        assert_eq!(p.len, 5, "persistent change should eventually replace");
    }

    #[test]
    fn path_register_is_checkpointable_by_copy() {
        let mut path = StreamPath::new();
        path.push(Addr::new(0x104));
        let ckpt = path;
        path.push(Addr::new(0x20c));
        assert_ne!(
            path.dolc_hash(Addr::new(0x1000), Dolc::HPCA2004),
            ckpt.dolc_hash(Addr::new(0x1000), Dolc::HPCA2004)
        );
        path = ckpt;
        assert_eq!(path, ckpt);
    }

    #[test]
    fn dolc_hash_depends_on_current_last_and_older() {
        let dolc = Dolc::HPCA2004;
        let mut p1 = StreamPath::new();
        let mut p2 = StreamPath::new();
        for i in 0..10u64 {
            p1.push(Addr::new(0x1000 + i * 68));
            p2.push(Addr::new(0x1000 + i * 68));
        }
        assert_eq!(
            p1.dolc_hash(Addr::new(0x4000), dolc),
            p2.dolc_hash(Addr::new(0x4000), dolc)
        );
        // Different current.
        assert_ne!(
            p1.dolc_hash(Addr::new(0x4000), dolc),
            p1.dolc_hash(Addr::new(0x4004), dolc)
        );
        // Different last element (low bits differ, as real stream starts do).
        p2.push(Addr::new(0xbeef_0014));
        assert_ne!(
            p1.dolc_hash(Addr::new(0x4000), dolc),
            p2.dolc_hash(Addr::new(0x4000), dolc)
        );
    }

    #[test]
    fn snapshot_round_trip_preserves_both_levels_and_path() {
        let mut sp = StreamPredictor::new(64, 256, 4, Dolc::HPCA2004, 64).unwrap();
        let mut path = StreamPath::new();
        for i in 0..20u64 {
            path.push(Addr::new(0x1000 + i * 52));
            sp.train(
                Addr::new(0x1000 + (i % 5) * 0x40),
                &path,
                obs(8 + (i % 3) as u32, 0x2000 + i * 4),
            );
        }
        let mut w = SnapWriter::new();
        sp.save_state(&mut w);
        path.save(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = StreamPredictor::new(64, 256, 4, Dolc::HPCA2004, 64).unwrap();
        let mut r = SnapReader::new(&bytes);
        fresh.load_state(&mut r).unwrap();
        let path_back = StreamPath::load(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(path_back, path);
        assert_eq!(fresh.stats(), sp.stats());
        for i in 0..5u64 {
            let start = Addr::new(0x1000 + i * 0x40);
            assert_eq!(fresh.predict(start, &path), sp.predict(start, &path));
        }
    }

    #[test]
    fn hpca_configuration() {
        let sp = StreamPredictor::hpca2004();
        assert_eq!(sp.max_stream(), 64);
        let ((l1_lookups, _), (l2_lookups, _), allocs) = sp.stats();
        assert_eq!((l1_lookups, l2_lookups, allocs), (0, 0, 0));
    }
}
