//! Branch target buffer (Lee & Smith, 1984) — the classical fetch unit's
//! target store.

use smt_isa::{Addr, BranchKind, Diagnostic, Snap, SnapReader, SnapWriter};

use crate::assoc::SetAssoc;

/// Payload of a BTB entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbEntry {
    /// Predicted target of the branch.
    pub target: Addr,
    /// Branch flavour, as discovered at resolve time (drives RAS usage).
    pub kind: BranchKind,
}

impl Snap for BtbEntry {
    fn save(&self, w: &mut SnapWriter) {
        self.target.save(w);
        self.kind.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(BtbEntry {
            target: Addr::load(r)?,
            kind: BranchKind::load(r)?,
        })
    }
}

/// A set-associative branch target buffer, indexed and tagged by branch PC.
///
/// Only branches that have been *taken* at least once are allocated — the
/// standard allocation policy: a never-taken branch needs no target, and its
/// absence makes the (correct) fall-through prediction free.
///
/// The paper's configuration is 2K entries, 4-way (Table 3);
/// [`Btb::hpca2004`] reproduces it.
#[derive(Clone, Debug)]
pub struct Btb {
    table: SetAssoc<BtbEntry>,
    set_bits: u32,
}

impl Btb {
    /// Creates a BTB with `entries` entries and `ways` associativity.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`SetAssoc::new`].
    pub fn new(entries: usize, ways: usize) -> Result<Self, Diagnostic> {
        let table = SetAssoc::new(entries, ways).map_err(|d| d.in_field("btb_entries"))?;
        let set_bits = table.num_sets().trailing_zeros();
        Ok(Btb { table, set_bits })
    }

    /// The paper's configuration: 2K entries, 4-way associative.
    pub fn hpca2004() -> Self {
        Btb::new(2048, 4).expect("preset geometry is valid") // lint:allow(no-panic): preset geometry is valid by construction
    }

    fn set_and_tag(&self, pc: Addr) -> (u64, u64) {
        let word = pc.raw() >> 2;
        (word & self.table.set_mask(), word >> self.set_bits)
    }

    /// Looks up the branch at `pc`.
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbEntry> {
        let (set, tag) = self.set_and_tag(pc);
        self.table.lookup(set, tag).map(|e| *e)
    }

    /// Looks up without touching replacement state or statistics.
    pub fn peek(&self, pc: Addr) -> Option<BtbEntry> {
        let (set, tag) = self.set_and_tag(pc);
        self.table.peek(set, tag).copied()
    }

    /// Allocates/updates the entry for a branch observed taken to `target`.
    pub fn record_taken(&mut self, pc: Addr, target: Addr, kind: BranchKind) {
        let (set, tag) = self.set_and_tag(pc);
        self.table.insert(set, tag, BtbEntry { target, kind });
    }

    /// `(lookups, hits)` counts.
    pub fn stats(&self) -> (u64, u64) {
        self.table.stats()
    }

    /// Total entry count.
    pub fn entries(&self) -> usize {
        self.table.num_sets() * self.table.ways()
    }

    /// Approximate hardware budget in bytes (tag + target + kind ≈ 12 B).
    pub fn budget_bytes(&self) -> usize {
        self.entries() * 12
    }

    /// Serializes the table contents and statistics.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.table.save_state(w);
    }

    /// Restores state saved by [`Btb::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` on geometry mismatch or a malformed byte stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.table.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_taken() {
        let mut btb = Btb::new(64, 4).unwrap();
        let pc = Addr::new(0x1000);
        assert!(btb.lookup(pc).is_none());
        btb.record_taken(pc, Addr::new(0x2000), BranchKind::Cond);
        let e = btb.lookup(pc).unwrap();
        assert_eq!(e.target, Addr::new(0x2000));
        assert_eq!(e.kind, BranchKind::Cond);
    }

    #[test]
    fn update_changes_target() {
        let mut btb = Btb::new(64, 4).unwrap();
        let pc = Addr::new(0x1000);
        btb.record_taken(pc, Addr::new(0x2000), BranchKind::Indirect);
        btb.record_taken(pc, Addr::new(0x3000), BranchKind::Indirect);
        assert_eq!(btb.lookup(pc).unwrap().target, Addr::new(0x3000));
    }

    #[test]
    fn conflicting_branches_evict_lru() {
        let mut btb = Btb::new(8, 2).unwrap(); // 4 sets × 2 ways
                                               // Three branches mapping to the same set (stride = sets * 4 bytes).
        let a = Addr::new(0x1000);
        let b = Addr::new(0x1000 + 4 * 4);
        let c = Addr::new(0x1000 + 8 * 4);
        btb.record_taken(a, Addr::new(1 << 4), BranchKind::Cond);
        btb.record_taken(b, Addr::new(2 << 4), BranchKind::Cond);
        btb.lookup(a); // make `b` the LRU
        btb.record_taken(c, Addr::new(3 << 4), BranchKind::Cond);
        assert!(btb.peek(a).is_some());
        assert!(btb.peek(b).is_none(), "LRU entry should have been evicted");
        assert!(btb.peek(c).is_some());
    }

    #[test]
    fn hpca_configuration() {
        let btb = Btb::hpca2004();
        assert_eq!(btb.entries(), 2048);
    }

    #[test]
    fn distinct_pcs_do_not_alias_with_full_tags() {
        let mut btb = Btb::new(2048, 4).unwrap();
        let a = Addr::new(0x0010_0000);
        let b = Addr::new(0x0090_0000); // same set index, different tag
        btb.record_taken(a, Addr::new(0xaaaa), BranchKind::Jump);
        assert!(btb.lookup(b).is_none());
    }
}
