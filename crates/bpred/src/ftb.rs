//! Fetch target buffer (Reinman, Calder & Austin, 2001).
//!
//! An FTB is a BTB indexed by **fetch-block start address** instead of
//! branch address. An entry describes the *fetch block* beginning there: its
//! length and the branch that terminates it. Crucially, only branches that
//! have been **observed taken** ever terminate a block — a conditional
//! branch that has so far always fallen through is invisible to the FTB and
//! is *embedded* inside a longer block ("ignoring some non-taken branches",
//! paper §3.3). If an embedded branch is finally taken, the fetch was a
//! misfetch; retraining splits the block.

use smt_isa::{Addr, BranchKind, Diagnostic, Snap, SnapReader, SnapWriter};

use crate::assoc::SetAssoc;
use crate::counters::TwoBit;

/// Description of a fetch block's terminating branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FtbEnd {
    /// Branch flavour (drives direction prediction and RAS usage).
    pub kind: BranchKind,
    /// Predicted taken-target.
    pub target: Addr,
}

/// An FTB entry: the fetch block starting at the entry's (tagged) address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FtbEntry {
    /// Block length in instructions, including the terminating branch
    /// (1 ..= max_block).
    len: u32,
    /// Terminating branch, or `None` for a length-capped sequential chunk.
    end: Option<FtbEnd>,
    /// Hysteresis: strengthened when the ending branch is taken again,
    /// weakened when it falls through; a dead entry is invalidated so the
    /// block can re-form at its longer extent.
    strength: TwoBit,
}

impl Snap for FtbEnd {
    fn save(&self, w: &mut SnapWriter) {
        self.kind.save(w);
        self.target.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(FtbEnd {
            kind: BranchKind::load(r)?,
            target: Addr::load(r)?,
        })
    }
}

impl Snap for FtbEntry {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.len);
        self.end.save(w);
        self.strength.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(FtbEntry {
            len: r.u32()?,
            end: Option::<FtbEnd>::load(r)?,
            strength: TwoBit::load(r)?,
        })
    }
}

/// The prediction an FTB hit yields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FtbPrediction {
    /// Block length in instructions.
    pub len: u32,
    /// Terminating branch (`None`: sequential chunk, fall through).
    pub end: Option<FtbEnd>,
}

/// What actually terminated a fetch block, for training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObservedEnd {
    /// PC of the taken branch that ended the block.
    pub branch_pc: Addr,
    /// Its flavour.
    pub kind: BranchKind,
    /// Its actual target.
    pub target: Addr,
}

/// Fetch target buffer.
///
/// The paper's configuration is 2K entries, 4-way (Table 3), which
/// [`Ftb::hpca2004`] reproduces with a 16-instruction maximum block length.
#[derive(Clone, Debug)]
pub struct Ftb {
    table: SetAssoc<FtbEntry>,
    set_bits: u32,
    max_block: u32,
    misfetch_trains: u64,
}

impl Ftb {
    /// Creates an FTB with `entries`×`ways` geometry and a maximum block
    /// length of `max_block` instructions.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`SetAssoc::new`] (`E0001`/`E0002`),
    /// or with `E0012` if `max_block` is zero.
    pub fn new(entries: usize, ways: usize, max_block: u32) -> Result<Self, Diagnostic> {
        if max_block == 0 {
            return Err(Diagnostic::error(
                "E0012",
                "max_ftb_block",
                "maximum fetch-block length must be positive",
                "the paper uses 16-instruction blocks",
            ));
        }
        let table = SetAssoc::new(entries, ways).map_err(|d| d.in_field("ftb_entries"))?;
        let set_bits = table.num_sets().trailing_zeros();
        Ok(Ftb {
            table,
            set_bits,
            max_block,
            misfetch_trains: 0,
        })
    }

    /// The paper's configuration: 2K entries, 4-way, 16-instruction blocks.
    pub fn hpca2004() -> Self {
        Ftb::new(2048, 4, 16).expect("preset geometry is valid") // lint:allow(no-panic): preset geometry is valid by construction
    }

    /// Maximum block length in instructions.
    pub fn max_block(&self) -> u32 {
        self.max_block
    }

    fn set_and_tag(&self, start: Addr) -> (u64, u64) {
        let word = start.raw() >> 2;
        (word & self.table.set_mask(), word >> self.set_bits)
    }

    /// Looks up the fetch block starting at `start`.
    pub fn lookup(&mut self, start: Addr) -> Option<FtbPrediction> {
        let (set, tag) = self.set_and_tag(start);
        self.table.lookup(set, tag).map(|e| FtbPrediction {
            len: e.len,
            end: e.end,
        })
    }

    /// Trains with a completed block: a taken branch at `observed.branch_pc`
    /// ended the block that started at `start`.
    ///
    /// Distances beyond [`Self::max_block`] store a capped sequential chunk;
    /// the block chains through a follow-on lookup at `start + max_block`.
    pub fn record_taken(&mut self, start: Addr, observed: ObservedEnd) {
        let Some(dist) = start.insts_until(observed.branch_pc) else {
            return; // stale/misaligned training from a squashed path
        };
        let (set, tag) = self.set_and_tag(start);
        // Lossless narrowing: anything past max_block stores a capped
        // sequential chunk instead.
        let len = match u32::try_from(dist + 1) {
            Ok(len) if len <= self.max_block => len,
            _ => {
                self.table.insert(
                    set,
                    tag,
                    FtbEntry {
                        len: self.max_block,
                        end: None,
                        strength: TwoBit::WEAK_T,
                    },
                );
                return;
            }
        };
        // If an existing entry already ends at this branch, just strengthen
        // and refresh the target (indirect branches change targets).
        if let Some(e) = self.table.lookup(set, tag) {
            if e.len == len {
                e.end = Some(FtbEnd {
                    kind: observed.kind,
                    target: observed.target,
                });
                e.strength.update(true);
                return;
            }
            if len < e.len {
                self.misfetch_trains += 1; // an embedded branch fired: split
            }
        }
        self.table.insert(
            set,
            tag,
            FtbEntry {
                len,
                end: Some(FtbEnd {
                    kind: observed.kind,
                    target: observed.target,
                }),
                strength: TwoBit::WEAK_T,
            },
        );
    }

    /// Trains with a block whose predicted ending branch resolved
    /// **not taken**: weakens the entry; a dead entry is invalidated so the
    /// block re-forms at its longer extent.
    pub fn record_not_taken(&mut self, start: Addr) {
        let (set, tag) = self.set_and_tag(start);
        let mut kill = false;
        if let Some(e) = self.table.lookup(set, tag) {
            e.strength.update(false);
            kill = e.strength == TwoBit::STRONG_NT;
        }
        if kill {
            self.table.invalidate(set, tag);
        }
    }

    /// `(lookups, hits)` counts.
    pub fn stats(&self) -> (u64, u64) {
        self.table.stats()
    }

    /// Number of trainings triggered by embedded branches firing.
    pub fn misfetch_trains(&self) -> u64 {
        self.misfetch_trains
    }

    /// Total entry count.
    pub fn entries(&self) -> usize {
        self.table.num_sets() * self.table.ways()
    }

    /// Approximate hardware budget in bytes (tag + target + len + state ≈ 13 B).
    pub fn budget_bytes(&self) -> usize {
        self.entries() * 13
    }

    /// Serializes the table contents and misfetch-training count.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.table.save_state(w);
        w.u64(self.misfetch_trains);
    }

    /// Restores state saved by [`Ftb::save_state`] in place.
    ///
    /// # Errors
    ///
    /// `E0018` on geometry mismatch or a malformed byte stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.table.load_state(r)?;
        self.misfetch_trains = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observed(pc: u64, target: u64) -> ObservedEnd {
        ObservedEnd {
            branch_pc: Addr::new(pc),
            kind: BranchKind::Cond,
            target: Addr::new(target),
        }
    }

    #[test]
    fn miss_then_hit_after_training() {
        let mut ftb = Ftb::new(64, 4, 16).unwrap();
        let start = Addr::new(0x1000);
        assert!(ftb.lookup(start).is_none());
        // Taken branch 5 instructions in: block of length 6.
        ftb.record_taken(start, observed(0x1014, 0x2000));
        let p = ftb.lookup(start).unwrap();
        assert_eq!(p.len, 6);
        assert_eq!(p.end.unwrap().target, Addr::new(0x2000));
    }

    #[test]
    fn blocks_embed_not_taken_branches() {
        // A block trained past a (never-taken) branch at 0x1008 ends at the
        // taken branch at 0x101c: the inner branch is embedded.
        let mut ftb = Ftb::new(64, 4, 16).unwrap();
        let start = Addr::new(0x1000);
        ftb.record_taken(start, observed(0x101c, 0x4000));
        let p = ftb.lookup(start).unwrap();
        assert_eq!(p.len, 8); // spans both branches
    }

    #[test]
    fn embedded_branch_firing_splits_the_block() {
        let mut ftb = Ftb::new(64, 4, 16).unwrap();
        let start = Addr::new(0x1000);
        ftb.record_taken(start, observed(0x101c, 0x4000)); // len 8
                                                           // The embedded branch at 0x1008 is finally taken: misfetch, retrain.
        ftb.record_taken(start, observed(0x1008, 0x3000));
        let p = ftb.lookup(start).unwrap();
        assert_eq!(p.len, 3);
        assert_eq!(p.end.unwrap().target, Addr::new(0x3000));
        assert_eq!(ftb.misfetch_trains(), 1);
    }

    #[test]
    fn long_blocks_are_capped_as_sequential_chunks() {
        let mut ftb = Ftb::new(64, 4, 16).unwrap();
        let start = Addr::new(0x1000);
        // Taken branch 40 instructions away: beyond the 16-inst cap.
        ftb.record_taken(start, observed(0x1000 + 40 * 4, 0x9000));
        let p = ftb.lookup(start).unwrap();
        assert_eq!(p.len, 16);
        assert!(p.end.is_none(), "capped chunk has no end branch");
    }

    #[test]
    fn persistent_not_taken_end_invalidates_entry() {
        let mut ftb = Ftb::new(64, 4, 16).unwrap();
        let start = Addr::new(0x1000);
        ftb.record_taken(start, observed(0x1010, 0x2000));
        for _ in 0..4 {
            ftb.record_not_taken(start);
        }
        assert!(
            ftb.lookup(start).is_none(),
            "dead entry should be invalidated so the block can re-form longer"
        );
    }

    #[test]
    fn taken_again_strengthens_and_survives_one_not_taken() {
        let mut ftb = Ftb::new(64, 4, 16).unwrap();
        let start = Addr::new(0x1000);
        ftb.record_taken(start, observed(0x1010, 0x2000));
        ftb.record_taken(start, observed(0x1010, 0x2000));
        ftb.record_not_taken(start);
        assert!(ftb.lookup(start).is_some());
    }

    #[test]
    fn stale_training_from_unrelated_start_is_ignored() {
        let mut ftb = Ftb::new(64, 4, 16).unwrap();
        // Branch "before" the recorded start (squashed-path garbage).
        ftb.record_taken(Addr::new(0x2000), observed(0x1000, 0x99));
        assert!(ftb.lookup(Addr::new(0x2000)).is_none());
    }

    #[test]
    fn hpca_configuration() {
        let ftb = Ftb::hpca2004();
        assert_eq!(ftb.entries(), 2048);
        assert_eq!(ftb.max_block(), 16);
    }
}
