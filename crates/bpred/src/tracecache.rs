//! A trace cache (Rotenberg, Bennett & Smith, MICRO 1996).
//!
//! The paper's related work discusses the trace cache as the
//! high-complexity alternative to its proposal: a special-purpose cache
//! storing *dynamic* instruction sequences (traces) collected by a fill
//! unit at the back end of the pipeline, indexed by starting address and
//! branch directions, backed by a core fetch unit on a miss. The paper
//! reports the stream front-end within ~1.5% of a trace cache "but with
//! much lower complexity"; this model exists to reproduce that comparison.
//!
//! A trace here is up to [`Trace::MAX_INSTS`] instructions spanning up to
//! [`Trace::MAX_SEGMENTS`] contiguous segments; segment boundaries are the
//! taken branches inside the trace. The trace records the direction vector
//! of its conditional branches so that lookups can select the way whose
//! directions agree with the current multiple-branch prediction.

use smt_isa::{
    load_vec_into, save_vec, Addr, BranchKind, Diagnostic, Snap, SnapReader, SnapWriter,
};

use crate::assoc::SetAssoc;

/// One contiguous segment of a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSegment {
    /// First instruction of the segment.
    pub start: Addr,
    /// Number of instructions (≥ 1).
    pub len: u32,
    /// The branch ending the segment, if the segment ends in one.
    pub end_kind: Option<BranchKind>,
    /// Whether that ending branch was taken when the trace was built
    /// (always true for inner segments; the last segment may end not-taken
    /// or without a branch).
    pub end_taken: bool,
}

/// A stored dynamic instruction sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Contiguous segments, in dynamic order.
    pub segments: Vec<TraceSegment>,
    /// Direction bits of the trace's conditional branches, oldest first.
    pub cond_dirs: Vec<bool>,
    /// Address execution continues at after the trace.
    pub next_pc: Addr,
}

impl Trace {
    /// Maximum instructions per trace (one trace-cache line).
    pub const MAX_INSTS: u32 = 16;
    /// Maximum contiguous segments (i.e. embedded taken branches + 1).
    pub const MAX_SEGMENTS: usize = 3;

    /// Total instructions in the trace.
    pub fn len(&self) -> u32 {
        self.segments.iter().map(|s| s.len).sum()
    }

    /// Whether the trace has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Starting address (first segment's start).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn start(&self) -> Addr {
        self.segments[0].start
    }
}

impl Snap for TraceSegment {
    fn save(&self, w: &mut SnapWriter) {
        self.start.save(w);
        w.u32(self.len);
        self.end_kind.save(w);
        w.bool(self.end_taken);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        Ok(TraceSegment {
            start: Addr::load(r)?,
            len: r.u32()?,
            end_kind: Option::<BranchKind>::load(r)?,
            end_taken: r.bool()?,
        })
    }
}

impl Snap for Trace {
    fn save(&self, w: &mut SnapWriter) {
        save_vec(w, &self.segments);
        save_vec(w, &self.cond_dirs);
        self.next_pc.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, Diagnostic> {
        let mut segments = Vec::new();
        load_vec_into(r, &mut segments)?;
        let mut cond_dirs = Vec::new();
        load_vec_into(r, &mut cond_dirs)?;
        Ok(Trace {
            segments,
            cond_dirs,
            next_pc: Addr::load(r)?,
        })
    }
}

/// The trace cache: set-associative storage of [`Trace`]s indexed by start
/// address, with way selection by conditional-direction match.
#[derive(Clone, Debug)]
pub struct TraceCache {
    table: SetAssoc<Trace>,
    set_bits: u32,
    hits: u64,
    lookups: u64,
    fills: u64,
}

impl TraceCache {
    /// Creates a trace cache with `entries` trace lines, `ways`-associative.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`SetAssoc::new`].
    pub fn new(entries: usize, ways: usize) -> Result<Self, Diagnostic> {
        let table = SetAssoc::new(entries, ways).map_err(|d| d.in_field("tc_entries"))?;
        let set_bits = table.num_sets().trailing_zeros();
        Ok(TraceCache {
            table,
            set_bits,
            hits: 0,
            lookups: 0,
            fills: 0,
        })
    }

    /// A typical configuration comparable to the paper-era literature:
    /// 512 trace lines of up to 16 instructions (≈ 32 KB of instruction
    /// storage), 4-way associative.
    pub fn typical() -> Self {
        TraceCache::new(512, 4).expect("preset geometry is valid") // lint:allow(no-panic): preset geometry is valid by construction
    }

    fn set_and_tag(&self, start: Addr, dirs: &[bool]) -> (u64, u64) {
        let word = start.raw() >> 2;
        // Fold the direction vector into the tag so different paths from
        // the same start occupy different ways (path associativity).
        let mut dir_bits = 0u64;
        for (i, &d) in dirs.iter().enumerate().take(8) {
            dir_bits |= (d as u64) << i;
        }
        (
            word & self.table.set_mask(),
            (word >> self.set_bits) ^ (dir_bits << 48),
        )
    }

    /// Looks up a trace starting at `start` whose conditional directions
    /// match the prediction vector `pred_dirs` (only the trace's own
    /// conditionals are compared; `pred_dirs` must supply at least as many
    /// bits as the stored trace used).
    pub fn lookup(&mut self, start: Addr, pred_dirs: &[bool]) -> Option<Trace> {
        self.lookups += 1;
        // Try the longest direction prefixes first: a trace with more
        // matching conditionals is the better (longer) fetch.
        for take in (0..=pred_dirs.len().min(8)).rev() {
            let (set, tag) = self.set_and_tag(start, &pred_dirs[..take]);
            if let Some(t) = self.table.lookup(set, tag) {
                if t.cond_dirs.len() == take
                    && t.cond_dirs.iter().zip(pred_dirs).all(|(a, b)| a == b)
                {
                    self.hits += 1;
                    return Some(t.clone());
                }
            }
        }
        None
    }

    /// Installs a trace collected by the fill unit.
    ///
    /// Traces that are empty or longer than [`Trace::MAX_INSTS`] are
    /// rejected (fill-unit bugs), as are traces with more conditionals than
    /// the direction-tag can hold.
    pub fn fill(&mut self, trace: Trace) {
        if trace.is_empty()
            || trace.len() > Trace::MAX_INSTS
            || trace.segments.len() > Trace::MAX_SEGMENTS
            || trace.cond_dirs.len() > 8
        {
            return;
        }
        let (set, tag) = self.set_and_tag(trace.start(), &trace.cond_dirs);
        self.fills += 1;
        self.table.insert(set, tag, trace);
    }

    /// `(lookups, hits, fills)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.lookups, self.hits, self.fills)
    }

    /// Serializes the stored traces and hit/fill statistics.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.table.save_state(w);
        w.u64(self.hits);
        w.u64(self.lookups);
        w.u64(self.fills);
    }

    /// Restores state saved by [`TraceCache::save_state`] in place.
    ///
    /// Trace payloads own heap storage, so restoring a trace cache may
    /// allocate; only the resumed simulation loop is allocation-free.
    ///
    /// # Errors
    ///
    /// `E0018` on geometry mismatch or a malformed byte stream.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), Diagnostic> {
        self.table.load_state(r)?;
        self.hits = r.u64()?;
        self.lookups = r.u64()?;
        self.fills = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_segment_trace() -> Trace {
        Trace {
            segments: vec![
                TraceSegment {
                    start: Addr::new(0x1000),
                    len: 6,
                    end_kind: Some(BranchKind::Cond),
                    end_taken: true,
                },
                TraceSegment {
                    start: Addr::new(0x2000),
                    len: 5,
                    end_kind: Some(BranchKind::Cond),
                    end_taken: false,
                },
            ],
            cond_dirs: vec![true, false],
            next_pc: Addr::new(0x2014),
        }
    }

    #[test]
    fn geometry_helpers() {
        let t = two_segment_trace();
        assert_eq!(t.len(), 11);
        assert_eq!(t.start(), Addr::new(0x1000));
        assert!(!t.is_empty());
    }

    #[test]
    fn fill_then_lookup_with_matching_directions() {
        let mut tc = TraceCache::new(64, 4).unwrap();
        tc.fill(two_segment_trace());
        let hit = tc.lookup(Addr::new(0x1000), &[true, false, true]);
        assert_eq!(hit, Some(two_segment_trace()));
    }

    #[test]
    fn lookup_with_mismatched_directions_misses() {
        let mut tc = TraceCache::new(64, 4).unwrap();
        tc.fill(two_segment_trace());
        assert!(tc.lookup(Addr::new(0x1000), &[false, false]).is_none());
        assert!(tc.lookup(Addr::new(0x1000), &[true, true]).is_none());
        assert!(tc.lookup(Addr::new(0x3000), &[true, false]).is_none());
    }

    #[test]
    fn path_associativity_stores_both_paths() {
        let mut tc = TraceCache::new(64, 4).unwrap();
        let a = two_segment_trace();
        let mut b = two_segment_trace();
        b.cond_dirs = vec![false];
        b.segments.truncate(1);
        b.segments[0].end_taken = false;
        b.next_pc = Addr::new(0x1018);
        tc.fill(a.clone());
        tc.fill(b.clone());
        assert_eq!(tc.lookup(Addr::new(0x1000), &[true, false]), Some(a));
        assert_eq!(tc.lookup(Addr::new(0x1000), &[false, true]), Some(b));
    }

    #[test]
    fn oversized_traces_are_rejected() {
        let mut tc = TraceCache::new(64, 4).unwrap();
        let mut t = two_segment_trace();
        t.segments[0].len = 20; // 20 + 5 > 16
        tc.fill(t);
        assert!(tc.lookup(Addr::new(0x1000), &[true, false]).is_none());
        let (_, _, fills) = tc.stats();
        assert_eq!(fills, 0);
    }

    #[test]
    fn snapshot_round_trip_preserves_traces() {
        let mut tc = TraceCache::new(64, 4).unwrap();
        tc.fill(two_segment_trace());
        let _ = tc.lookup(Addr::new(0x1000), &[true, false]);
        let _ = tc.lookup(Addr::new(0x5000), &[]);

        let mut w = SnapWriter::new();
        tc.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = TraceCache::new(64, 4).unwrap();
        let mut r = SnapReader::new(&bytes);
        fresh.load_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(fresh.stats(), tc.stats());
        assert_eq!(
            fresh.lookup(Addr::new(0x1000), &[true, false]),
            Some(two_segment_trace())
        );
    }

    #[test]
    fn refill_replaces_same_path() {
        let mut tc = TraceCache::new(64, 4).unwrap();
        tc.fill(two_segment_trace());
        let mut updated = two_segment_trace();
        updated.next_pc = Addr::new(0x9999 & !3);
        tc.fill(updated.clone());
        assert_eq!(tc.lookup(Addr::new(0x1000), &[true, false]), Some(updated));
    }
}
