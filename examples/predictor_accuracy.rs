//! Drive the branch-prediction substrates directly (no pipeline): feed every
//! benchmark clone's oracle stream to gshare and gskew and report accuracy,
//! the way predictor papers tabulate it.
//!
//! ```bash
//! cargo run --release --example predictor_accuracy
//! ```

use smtfetch::bpred::{GlobalHistory, Gshare, Gskew};
use smtfetch::isa::{Addr, BranchKind, InstClass};
use smtfetch::workloads::{BenchmarkProfile, ProgramBuilder, Walker};

fn main() {
    const INSTS: u64 = 300_000;
    println!(
        "{:<9} {:>9} {:>9} {:>9}",
        "benchmark", "branches", "gshare", "gskew"
    );
    let (mut tot_n, mut tot_g, mut tot_k) = (0u64, 0u64, 0u64);
    for profile in BenchmarkProfile::all() {
        let program = ProgramBuilder::new(profile.clone())
            .base(Addr::new(0x40_0000))
            .seed(2004)
            .build();
        let mut walker = Walker::new(program, 0);
        let mut gshare = Gshare::hpca2004();
        let mut gskew = Gskew::hpca2004();
        let mut h16 = GlobalHistory::new(16);
        let mut h15 = GlobalHistory::new(15);
        let (mut n, mut ok_g, mut ok_k) = (0u64, 0u64, 0u64);
        for _ in 0..INSTS {
            let d = walker.next_inst();
            if d.class == InstClass::Branch(BranchKind::Cond) {
                if gshare.predict(d.pc, h16) == d.taken {
                    ok_g += 1;
                }
                if gskew.predict(d.pc, h15) == d.taken {
                    ok_k += 1;
                }
                gshare.update(d.pc, h16, d.taken);
                gskew.update(d.pc, h15, d.taken);
                h16.push(d.taken);
                h15.push(d.taken);
                n += 1;
            }
        }
        println!(
            "{:<9} {:>9} {:>8.1}% {:>8.1}%",
            profile.name,
            n,
            100.0 * ok_g as f64 / n as f64,
            100.0 * ok_k as f64 / n as f64
        );
        tot_n += n;
        tot_g += ok_g;
        tot_k += ok_k;
    }
    println!(
        "{:<9} {:>9} {:>8.1}% {:>8.1}%",
        "TOTAL",
        tot_n,
        100.0 * tot_g as f64 / tot_n as f64,
        100.0 * tot_k as f64 / tot_n as f64
    );
    println!(
        "\ngskew's skewed banks + majority vote remove conflict aliasing, so it\n\
         edges out gshare at the same ~45KB hardware budget (paper §3.3)."
    );
}
