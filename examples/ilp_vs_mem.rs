//! The paper's central contrast: fetching from two threads helps ILP
//! workloads but *hurts* memory-bounded ones.
//!
//! Sweeps `ICOUNT.1.8` vs `ICOUNT.2.8` over an ILP workload (`4_ILP`) and a
//! mixed one (`4_MIX`, half memory-bounded) and shows the crossover of §5.2:
//! a stalled
//! memory-bound thread that keeps receiving fetch slots monopolizes the
//! shared issue queues and reorder buffer, starving the healthy threads.
//!
//! ```bash
//! cargo run --release --example ilp_vs_mem
//! ```

use smtfetch::core::{FetchEngineKind, FetchPolicy, SimBuilder};
use smtfetch::workloads::Workload;

fn measure(
    workload: &Workload,
    policy: FetchPolicy,
) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let mut sim = SimBuilder::new(workload.programs(2004)?)
        .fetch_engine(FetchEngineKind::GskewFtb)
        .fetch_policy(policy)
        .build()?;
    sim.run_cycles(30_000);
    sim.reset_stats();
    let stats = sim.run_cycles(120_000);
    Ok((stats.ipfc(), stats.ipc()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("gskew+FTB front-end, one vs two threads fetched per cycle\n");
    println!(
        "{:<8} {:>12} {:>10} {:>10}",
        "workload", "policy", "IPFC", "IPC"
    );
    for workload in [Workload::ilp4(), Workload::mix4()] {
        let mut per_policy = Vec::new();
        for policy in [FetchPolicy::icount(1, 8), FetchPolicy::icount(2, 8)] {
            let (ipfc, ipc) = measure(&workload, policy)?;
            println!(
                "{:<8} {:>12} {:>10.2} {:>10.2}",
                workload.name(),
                policy.to_string(),
                ipfc,
                ipc
            );
            per_policy.push(ipc);
        }
        let delta = (per_policy[1] / per_policy[0] - 1.0) * 100.0;
        println!("         -> fetching from two threads changes IPC by {delta:+.1}%\n");
    }
    println!(
        "ILP workloads gain from dual-thread fetch (more fetch slots filled);\n\
         memory-bounded workloads lose (a stalled thread clogs shared queues).\n\
         This asymmetry is why the paper fetches many instructions from ONE\n\
         good thread instead of a few from two."
    );
    Ok(())
}
