//! Quickstart: simulate the paper's headline configuration.
//!
//! Runs the gzip–twolf `2_MIX` workload on the stream front-end with
//! `ICOUNT.1.16` — the paper's proposed low-complexity fetch unit — and on
//! the conventional gshare+BTB front-end with `ICOUNT.2.8`, then compares.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use smtfetch::core::{FetchEngineKind, FetchPolicy, SimBuilder};
use smtfetch::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::mix2();
    println!("workload: {workload}");

    for (label, engine, policy) in [
        (
            "conventional SMT fetch (gshare+BTB, ICOUNT.2.8)",
            FetchEngineKind::GshareBtb,
            FetchPolicy::icount(2, 8),
        ),
        (
            "paper's proposal (stream fetch, ICOUNT.1.16)",
            FetchEngineKind::Stream,
            FetchPolicy::icount(1, 16),
        ),
    ] {
        let mut sim = SimBuilder::new(workload.programs(2004)?)
            .fetch_engine(engine)
            .fetch_policy(policy)
            .build()?;

        // Warm predictors and caches, then measure.
        sim.run_cycles(30_000);
        sim.reset_stats();
        let stats = sim.run_cycles(120_000);

        println!("\n{label}");
        println!(
            "  fetch throughput  : {:5.2} instructions/fetch-cycle",
            stats.ipfc()
        );
        println!(
            "  commit throughput : {:5.2} instructions/cycle",
            stats.ipc()
        );
        println!(
            "  branch accuracy   : {:5.1}%  wrong-path fetches: {:4.1}%",
            stats.branch_accuracy() * 100.0,
            stats.wrong_path_fraction() * 100.0
        );
        println!(
            "  per-thread commits: gzip {} / twolf {}",
            stats.committed[0], stats.committed[1]
        );
    }
    println!(
        "\nThe single-thread-per-cycle stream front-end keeps up with (or beats)\n\
         dual-thread fetch while needing one I-cache port and no merge network —\n\
         the paper's low-complexity, high-performance result."
    );
    Ok(())
}
