//! Sweep every fetch policy × front-end combination on one workload —
//! a miniature version of the paper's full evaluation, for interactive use.
//!
//! ```bash
//! cargo run --release --example policy_explorer            # default 2_MIX
//! cargo run --release --example policy_explorer 8_ILP
//! cargo run --release --example policy_explorer 4_MEM rr   # round-robin
//! ```

use smtfetch::core::{FetchEngineKind, FetchPolicy, SimBuilder};
use smtfetch::workloads::Workload;

fn workload_by_name(name: &str) -> Option<Workload> {
    Workload::all_table2()
        .into_iter()
        .find(|w| w.name() == name)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let workload = args
        .get(1)
        .map(|n| {
            workload_by_name(n).unwrap_or_else(|| {
                eprintln!("unknown workload `{n}`; available:");
                for w in Workload::all_table2() {
                    eprintln!("  {}", w.name());
                }
                std::process::exit(2);
            })
        })
        .unwrap_or_else(Workload::mix2);
    let round_robin = args.get(2).map(|s| s == "rr").unwrap_or(false);

    println!("{workload}\n");
    println!(
        "{:<12} {:>12} {:>8} {:>8} {:>10} {:>11}",
        "engine", "policy", "IPFC", "IPC", "br-acc", "wrong-path"
    );
    for engine in FetchEngineKind::all() {
        for (n, x) in [(1, 8), (2, 8), (1, 16), (2, 16)] {
            let policy = if round_robin {
                FetchPolicy::round_robin(n, x)
            } else {
                FetchPolicy::icount(n, x)
            };
            let mut sim = SimBuilder::new(workload.programs(2004)?)
                .fetch_engine(engine)
                .fetch_policy(policy)
                .build()?;
            sim.run_cycles(30_000);
            sim.reset_stats();
            let s = sim.run_cycles(120_000);
            println!(
                "{:<12} {:>12} {:>8.2} {:>8.2} {:>9.1}% {:>10.1}%",
                engine.to_string(),
                policy.to_string(),
                s.ipfc(),
                s.ipc(),
                s.branch_accuracy() * 100.0,
                s.wrong_path_fraction() * 100.0
            );
        }
    }
    Ok(())
}
