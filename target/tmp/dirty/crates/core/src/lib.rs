#![forbid(unsafe_code)]
use std::collections::HashMap;
pub fn f() { let _: HashMap<u32, u32> = HashMap::new(); }
