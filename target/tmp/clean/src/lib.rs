#![forbid(unsafe_code)]
