#![forbid(unsafe_code)]
pub fn f(x: Option<u32>) -> u32 {
x.expect("checked by caller") // lint:allow(no-panic)
}
