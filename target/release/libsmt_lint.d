/root/repo/target/release/libsmt_lint.rlib: /root/repo/crates/lint/src/lib.rs
