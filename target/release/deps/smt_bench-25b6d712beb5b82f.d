/root/repo/target/release/deps/smt_bench-25b6d712beb5b82f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/smt_bench-25b6d712beb5b82f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
