/root/repo/target/release/deps/table1-6b4d61354880075c.d: crates/experiments/src/bin/table1.rs

/root/repo/target/release/deps/table1-6b4d61354880075c: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
