/root/repo/target/release/deps/smt_lint-d15baafad32dda3d.d: crates/lint/src/lib.rs

/root/repo/target/release/deps/libsmt_lint-d15baafad32dda3d.rlib: crates/lint/src/lib.rs

/root/repo/target/release/deps/libsmt_lint-d15baafad32dda3d.rmeta: crates/lint/src/lib.rs

crates/lint/src/lib.rs:
