/root/repo/target/release/deps/smt_experiments-26571c12933060ac.d: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs

/root/repo/target/release/deps/smt_experiments-26571c12933060ac: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs

crates/experiments/src/lib.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/sweep.rs:
