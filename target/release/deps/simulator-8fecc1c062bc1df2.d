/root/repo/target/release/deps/simulator-8fecc1c062bc1df2.d: crates/bench/benches/simulator.rs

/root/repo/target/release/deps/simulator-8fecc1c062bc1df2: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
