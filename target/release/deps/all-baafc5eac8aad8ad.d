/root/repo/target/release/deps/all-baafc5eac8aad8ad.d: crates/experiments/src/bin/all.rs

/root/repo/target/release/deps/all-baafc5eac8aad8ad: crates/experiments/src/bin/all.rs

crates/experiments/src/bin/all.rs:
