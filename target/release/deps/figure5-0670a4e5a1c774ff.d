/root/repo/target/release/deps/figure5-0670a4e5a1c774ff.d: crates/experiments/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-0670a4e5a1c774ff: crates/experiments/src/bin/figure5.rs

crates/experiments/src/bin/figure5.rs:
