/root/repo/target/release/deps/smt_lint-e9e79b7a2dc437a7.d: crates/lint/src/main.rs

/root/repo/target/release/deps/smt_lint-e9e79b7a2dc437a7: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
