/root/repo/target/release/deps/figure7-e43ec0de0dc685c4.d: crates/experiments/src/bin/figure7.rs

/root/repo/target/release/deps/figure7-e43ec0de0dc685c4: crates/experiments/src/bin/figure7.rs

crates/experiments/src/bin/figure7.rs:
