/root/repo/target/release/deps/ablations-4693df7f367462ac.d: crates/experiments/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-4693df7f367462ac: crates/experiments/src/bin/ablations.rs

crates/experiments/src/bin/ablations.rs:
