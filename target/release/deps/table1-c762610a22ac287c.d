/root/repo/target/release/deps/table1-c762610a22ac287c.d: crates/experiments/src/bin/table1.rs

/root/repo/target/release/deps/table1-c762610a22ac287c: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
