/root/repo/target/release/deps/figure6-370cc7d86322c7f7.d: crates/experiments/src/bin/figure6.rs

/root/repo/target/release/deps/figure6-370cc7d86322c7f7: crates/experiments/src/bin/figure6.rs

crates/experiments/src/bin/figure6.rs:
