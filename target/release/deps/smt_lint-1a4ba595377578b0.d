/root/repo/target/release/deps/smt_lint-1a4ba595377578b0.d: crates/lint/src/main.rs

/root/repo/target/release/deps/smt_lint-1a4ba595377578b0: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
