/root/repo/target/release/deps/tracecache-40b4cde35d6ad1b0.d: crates/experiments/src/bin/tracecache.rs

/root/repo/target/release/deps/tracecache-40b4cde35d6ad1b0: crates/experiments/src/bin/tracecache.rs

crates/experiments/src/bin/tracecache.rs:
