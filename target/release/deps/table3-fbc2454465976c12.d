/root/repo/target/release/deps/table3-fbc2454465976c12.d: crates/experiments/src/bin/table3.rs

/root/repo/target/release/deps/table3-fbc2454465976c12: crates/experiments/src/bin/table3.rs

crates/experiments/src/bin/table3.rs:
