/root/repo/target/release/deps/smt_core-124a102c36929098.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/metrics.rs crates/core/src/sim.rs crates/core/src/thread.rs

/root/repo/target/release/deps/smt_core-124a102c36929098: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/metrics.rs crates/core/src/sim.rs crates/core/src/thread.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/metrics.rs:
crates/core/src/sim.rs:
crates/core/src/thread.rs:
