/root/repo/target/release/deps/figure4-8aad8afee5626cfd.d: crates/experiments/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-8aad8afee5626cfd: crates/experiments/src/bin/figure4.rs

crates/experiments/src/bin/figure4.rs:
