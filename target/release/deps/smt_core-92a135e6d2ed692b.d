/root/repo/target/release/deps/smt_core-92a135e6d2ed692b.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/metrics.rs crates/core/src/sim.rs crates/core/src/thread.rs

/root/repo/target/release/deps/libsmt_core-92a135e6d2ed692b.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/metrics.rs crates/core/src/sim.rs crates/core/src/thread.rs

/root/repo/target/release/deps/libsmt_core-92a135e6d2ed692b.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/metrics.rs crates/core/src/sim.rs crates/core/src/thread.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/metrics.rs:
crates/core/src/sim.rs:
crates/core/src/thread.rs:
