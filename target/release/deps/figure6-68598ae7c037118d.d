/root/repo/target/release/deps/figure6-68598ae7c037118d.d: crates/experiments/src/bin/figure6.rs

/root/repo/target/release/deps/figure6-68598ae7c037118d: crates/experiments/src/bin/figure6.rs

crates/experiments/src/bin/figure6.rs:
