/root/repo/target/release/deps/table3-a8a5c44fa89c1ac5.d: crates/experiments/src/bin/table3.rs

/root/repo/target/release/deps/table3-a8a5c44fa89c1ac5: crates/experiments/src/bin/table3.rs

crates/experiments/src/bin/table3.rs:
