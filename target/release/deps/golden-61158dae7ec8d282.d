/root/repo/target/release/deps/golden-61158dae7ec8d282.d: tests/golden.rs

/root/repo/target/release/deps/golden-61158dae7ec8d282: tests/golden.rs

tests/golden.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
