/root/repo/target/release/deps/smt_isa-69b543f92d279c6e.d: crates/isa/src/lib.rs crates/isa/src/addr.rs crates/isa/src/block.rs crates/isa/src/diag.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/smt_isa-69b543f92d279c6e: crates/isa/src/lib.rs crates/isa/src/addr.rs crates/isa/src/block.rs crates/isa/src/diag.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/addr.rs:
crates/isa/src/block.rs:
crates/isa/src/diag.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
