/root/repo/target/release/deps/table2-8b93da2d002c84a7.d: crates/experiments/src/bin/table2.rs

/root/repo/target/release/deps/table2-8b93da2d002c84a7: crates/experiments/src/bin/table2.rs

crates/experiments/src/bin/table2.rs:
