/root/repo/target/release/deps/smt_experiments-22f8e7c426270839.d: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs

/root/repo/target/release/deps/libsmt_experiments-22f8e7c426270839.rlib: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs

/root/repo/target/release/deps/libsmt_experiments-22f8e7c426270839.rmeta: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs

crates/experiments/src/lib.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/sweep.rs:
