/root/repo/target/release/deps/paper_shape-c499f164679c0da3.d: tests/paper_shape.rs

/root/repo/target/release/deps/paper_shape-c499f164679c0da3: tests/paper_shape.rs

tests/paper_shape.rs:
