/root/repo/target/release/deps/smtfetch-f8abe3d8575c7a81.d: src/main.rs

/root/repo/target/release/deps/smtfetch-f8abe3d8575c7a81: src/main.rs

src/main.rs:
