/root/repo/target/release/deps/end_to_end-7f1fe4df0938fd4d.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-7f1fe4df0938fd4d: tests/end_to_end.rs

tests/end_to_end.rs:
