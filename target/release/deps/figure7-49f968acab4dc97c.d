/root/repo/target/release/deps/figure7-49f968acab4dc97c.d: crates/experiments/src/bin/figure7.rs

/root/repo/target/release/deps/figure7-49f968acab4dc97c: crates/experiments/src/bin/figure7.rs

crates/experiments/src/bin/figure7.rs:
