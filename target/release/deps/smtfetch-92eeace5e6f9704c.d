/root/repo/target/release/deps/smtfetch-92eeace5e6f9704c.d: src/lib.rs

/root/repo/target/release/deps/libsmtfetch-92eeace5e6f9704c.rlib: src/lib.rs

/root/repo/target/release/deps/libsmtfetch-92eeace5e6f9704c.rmeta: src/lib.rs

src/lib.rs:
