/root/repo/target/release/deps/smtfetch-791ed386bb2bdbca.d: src/main.rs

/root/repo/target/release/deps/smtfetch-791ed386bb2bdbca: src/main.rs

src/main.rs:
