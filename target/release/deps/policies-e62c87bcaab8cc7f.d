/root/repo/target/release/deps/policies-e62c87bcaab8cc7f.d: crates/experiments/src/bin/policies.rs

/root/repo/target/release/deps/policies-e62c87bcaab8cc7f: crates/experiments/src/bin/policies.rs

crates/experiments/src/bin/policies.rs:
