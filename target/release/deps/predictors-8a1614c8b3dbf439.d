/root/repo/target/release/deps/predictors-8a1614c8b3dbf439.d: crates/bench/benches/predictors.rs

/root/repo/target/release/deps/predictors-8a1614c8b3dbf439: crates/bench/benches/predictors.rs

crates/bench/benches/predictors.rs:
