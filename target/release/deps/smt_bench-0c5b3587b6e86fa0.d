/root/repo/target/release/deps/smt_bench-0c5b3587b6e86fa0.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsmt_bench-0c5b3587b6e86fa0.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsmt_bench-0c5b3587b6e86fa0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
