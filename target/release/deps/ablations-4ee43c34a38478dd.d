/root/repo/target/release/deps/ablations-4ee43c34a38478dd.d: crates/experiments/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-4ee43c34a38478dd: crates/experiments/src/bin/ablations.rs

crates/experiments/src/bin/ablations.rs:
