/root/repo/target/release/deps/tracecache-2609210b67a62ca6.d: crates/experiments/src/bin/tracecache.rs

/root/repo/target/release/deps/tracecache-2609210b67a62ca6: crates/experiments/src/bin/tracecache.rs

crates/experiments/src/bin/tracecache.rs:
