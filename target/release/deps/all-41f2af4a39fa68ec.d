/root/repo/target/release/deps/all-41f2af4a39fa68ec.d: crates/experiments/src/bin/all.rs

/root/repo/target/release/deps/all-41f2af4a39fa68ec: crates/experiments/src/bin/all.rs

crates/experiments/src/bin/all.rs:
