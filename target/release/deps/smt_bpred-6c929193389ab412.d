/root/repo/target/release/deps/smt_bpred-6c929193389ab412.d: crates/bpred/src/lib.rs crates/bpred/src/assoc.rs crates/bpred/src/btb.rs crates/bpred/src/counters.rs crates/bpred/src/ftb.rs crates/bpred/src/gshare.rs crates/bpred/src/gskew.rs crates/bpred/src/history.rs crates/bpred/src/ras.rs crates/bpred/src/stream.rs crates/bpred/src/tracecache.rs

/root/repo/target/release/deps/smt_bpred-6c929193389ab412: crates/bpred/src/lib.rs crates/bpred/src/assoc.rs crates/bpred/src/btb.rs crates/bpred/src/counters.rs crates/bpred/src/ftb.rs crates/bpred/src/gshare.rs crates/bpred/src/gskew.rs crates/bpred/src/history.rs crates/bpred/src/ras.rs crates/bpred/src/stream.rs crates/bpred/src/tracecache.rs

crates/bpred/src/lib.rs:
crates/bpred/src/assoc.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/counters.rs:
crates/bpred/src/ftb.rs:
crates/bpred/src/gshare.rs:
crates/bpred/src/gskew.rs:
crates/bpred/src/history.rs:
crates/bpred/src/ras.rs:
crates/bpred/src/stream.rs:
crates/bpred/src/tracecache.rs:
