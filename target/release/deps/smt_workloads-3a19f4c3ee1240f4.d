/root/repo/target/release/deps/smt_workloads-3a19f4c3ee1240f4.d: crates/workloads/src/lib.rs crates/workloads/src/behavior.rs crates/workloads/src/builder.rs crates/workloads/src/program.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/walker.rs crates/workloads/src/workloads.rs

/root/repo/target/release/deps/smt_workloads-3a19f4c3ee1240f4: crates/workloads/src/lib.rs crates/workloads/src/behavior.rs crates/workloads/src/builder.rs crates/workloads/src/program.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/walker.rs crates/workloads/src/workloads.rs

crates/workloads/src/lib.rs:
crates/workloads/src/behavior.rs:
crates/workloads/src/builder.rs:
crates/workloads/src/program.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/walker.rs:
crates/workloads/src/workloads.rs:
