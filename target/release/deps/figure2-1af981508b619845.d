/root/repo/target/release/deps/figure2-1af981508b619845.d: crates/experiments/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-1af981508b619845: crates/experiments/src/bin/figure2.rs

crates/experiments/src/bin/figure2.rs:
