/root/repo/target/release/deps/smt_mem-c1aa54dbdeab03cd.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/mshr.rs crates/mem/src/tlb.rs

/root/repo/target/release/deps/libsmt_mem-c1aa54dbdeab03cd.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/mshr.rs crates/mem/src/tlb.rs

/root/repo/target/release/deps/libsmt_mem-c1aa54dbdeab03cd.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/mshr.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/mshr.rs:
crates/mem/src/tlb.rs:
