/root/repo/target/release/deps/smt_mem-93a449fcc07e32ca.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/mshr.rs crates/mem/src/tlb.rs

/root/repo/target/release/deps/smt_mem-93a449fcc07e32ca: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/mshr.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/mshr.rs:
crates/mem/src/tlb.rs:
