/root/repo/target/release/deps/figure8-95a704877afaf4f5.d: crates/experiments/src/bin/figure8.rs

/root/repo/target/release/deps/figure8-95a704877afaf4f5: crates/experiments/src/bin/figure8.rs

crates/experiments/src/bin/figure8.rs:
