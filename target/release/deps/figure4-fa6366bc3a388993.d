/root/repo/target/release/deps/figure4-fa6366bc3a388993.d: crates/experiments/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-fa6366bc3a388993: crates/experiments/src/bin/figure4.rs

crates/experiments/src/bin/figure4.rs:
