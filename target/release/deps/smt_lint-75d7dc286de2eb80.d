/root/repo/target/release/deps/smt_lint-75d7dc286de2eb80.d: crates/lint/src/lib.rs

/root/repo/target/release/deps/smt_lint-75d7dc286de2eb80: crates/lint/src/lib.rs

crates/lint/src/lib.rs:
