/root/repo/target/release/deps/figures-804d763c4a5c691f.d: crates/bench/benches/figures.rs

/root/repo/target/release/deps/figures-804d763c4a5c691f: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
