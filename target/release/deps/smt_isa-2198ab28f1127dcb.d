/root/repo/target/release/deps/smt_isa-2198ab28f1127dcb.d: crates/isa/src/lib.rs crates/isa/src/addr.rs crates/isa/src/block.rs crates/isa/src/diag.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libsmt_isa-2198ab28f1127dcb.rlib: crates/isa/src/lib.rs crates/isa/src/addr.rs crates/isa/src/block.rs crates/isa/src/diag.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libsmt_isa-2198ab28f1127dcb.rmeta: crates/isa/src/lib.rs crates/isa/src/addr.rs crates/isa/src/block.rs crates/isa/src/diag.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/addr.rs:
crates/isa/src/block.rs:
crates/isa/src/diag.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
