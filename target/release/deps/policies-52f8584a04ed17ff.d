/root/repo/target/release/deps/policies-52f8584a04ed17ff.d: crates/experiments/src/bin/policies.rs

/root/repo/target/release/deps/policies-52f8584a04ed17ff: crates/experiments/src/bin/policies.rs

crates/experiments/src/bin/policies.rs:
