/root/repo/target/release/deps/static_checks-00cd5ad6a3a1cde5.d: tests/static_checks.rs

/root/repo/target/release/deps/static_checks-00cd5ad6a3a1cde5: tests/static_checks.rs

tests/static_checks.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
