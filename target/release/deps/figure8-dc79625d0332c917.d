/root/repo/target/release/deps/figure8-dc79625d0332c917.d: crates/experiments/src/bin/figure8.rs

/root/repo/target/release/deps/figure8-dc79625d0332c917: crates/experiments/src/bin/figure8.rs

crates/experiments/src/bin/figure8.rs:
