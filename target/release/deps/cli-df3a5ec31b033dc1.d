/root/repo/target/release/deps/cli-df3a5ec31b033dc1.d: crates/lint/tests/cli.rs

/root/repo/target/release/deps/cli-df3a5ec31b033dc1: crates/lint/tests/cli.rs

crates/lint/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_smt-lint=/root/repo/target/release/smt-lint
# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
