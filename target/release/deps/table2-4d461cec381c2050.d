/root/repo/target/release/deps/table2-4d461cec381c2050.d: crates/experiments/src/bin/table2.rs

/root/repo/target/release/deps/table2-4d461cec381c2050: crates/experiments/src/bin/table2.rs

crates/experiments/src/bin/table2.rs:
