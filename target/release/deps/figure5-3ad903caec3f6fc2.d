/root/repo/target/release/deps/figure5-3ad903caec3f6fc2.d: crates/experiments/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-3ad903caec3f6fc2: crates/experiments/src/bin/figure5.rs

crates/experiments/src/bin/figure5.rs:
