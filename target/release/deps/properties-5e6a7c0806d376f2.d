/root/repo/target/release/deps/properties-5e6a7c0806d376f2.d: tests/properties.rs

/root/repo/target/release/deps/properties-5e6a7c0806d376f2: tests/properties.rs

tests/properties.rs:
