/root/repo/target/release/deps/figure2-e58993499d1eccb5.d: crates/experiments/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-e58993499d1eccb5: crates/experiments/src/bin/figure2.rs

crates/experiments/src/bin/figure2.rs:
