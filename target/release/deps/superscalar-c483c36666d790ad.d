/root/repo/target/release/deps/superscalar-c483c36666d790ad.d: crates/experiments/src/bin/superscalar.rs

/root/repo/target/release/deps/superscalar-c483c36666d790ad: crates/experiments/src/bin/superscalar.rs

crates/experiments/src/bin/superscalar.rs:
