/root/repo/target/release/deps/smtfetch-0fec8e7528f00bc6.d: src/lib.rs

/root/repo/target/release/deps/smtfetch-0fec8e7528f00bc6: src/lib.rs

src/lib.rs:
