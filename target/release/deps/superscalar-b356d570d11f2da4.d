/root/repo/target/release/deps/superscalar-b356d570d11f2da4.d: crates/experiments/src/bin/superscalar.rs

/root/repo/target/release/deps/superscalar-b356d570d11f2da4: crates/experiments/src/bin/superscalar.rs

crates/experiments/src/bin/superscalar.rs:
