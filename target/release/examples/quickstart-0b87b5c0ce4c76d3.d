/root/repo/target/release/examples/quickstart-0b87b5c0ce4c76d3.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0b87b5c0ce4c76d3: examples/quickstart.rs

examples/quickstart.rs:
