/root/repo/target/release/examples/predictor_accuracy-efbfc53d5d5014bf.d: examples/predictor_accuracy.rs

/root/repo/target/release/examples/predictor_accuracy-efbfc53d5d5014bf: examples/predictor_accuracy.rs

examples/predictor_accuracy.rs:
