/root/repo/target/release/examples/ilp_vs_mem-e9f3788273e06aaf.d: examples/ilp_vs_mem.rs

/root/repo/target/release/examples/ilp_vs_mem-e9f3788273e06aaf: examples/ilp_vs_mem.rs

examples/ilp_vs_mem.rs:
