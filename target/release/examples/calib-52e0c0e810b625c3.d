/root/repo/target/release/examples/calib-52e0c0e810b625c3.d: crates/workloads/examples/calib.rs

/root/repo/target/release/examples/calib-52e0c0e810b625c3: crates/workloads/examples/calib.rs

crates/workloads/examples/calib.rs:
