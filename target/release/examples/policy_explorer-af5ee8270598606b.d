/root/repo/target/release/examples/policy_explorer-af5ee8270598606b.d: examples/policy_explorer.rs

/root/repo/target/release/examples/policy_explorer-af5ee8270598606b: examples/policy_explorer.rs

examples/policy_explorer.rs:
