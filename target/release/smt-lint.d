/root/repo/target/release/smt-lint: /root/repo/crates/lint/src/lib.rs /root/repo/crates/lint/src/main.rs
