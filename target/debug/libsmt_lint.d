/root/repo/target/debug/libsmt_lint.rlib: /root/repo/crates/lint/src/lib.rs
