/root/repo/target/debug/examples/quickstart-87d331c45583442a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-87d331c45583442a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
