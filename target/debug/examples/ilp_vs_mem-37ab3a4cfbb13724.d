/root/repo/target/debug/examples/ilp_vs_mem-37ab3a4cfbb13724.d: examples/ilp_vs_mem.rs

/root/repo/target/debug/examples/ilp_vs_mem-37ab3a4cfbb13724: examples/ilp_vs_mem.rs

examples/ilp_vs_mem.rs:
