/root/repo/target/debug/examples/ilp_vs_mem-eb9cd56a5dd9dc27.d: examples/ilp_vs_mem.rs Cargo.toml

/root/repo/target/debug/examples/libilp_vs_mem-eb9cd56a5dd9dc27.rmeta: examples/ilp_vs_mem.rs Cargo.toml

examples/ilp_vs_mem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
