/root/repo/target/debug/examples/predictor_accuracy-decc3c5008772ebc.d: examples/predictor_accuracy.rs

/root/repo/target/debug/examples/predictor_accuracy-decc3c5008772ebc: examples/predictor_accuracy.rs

examples/predictor_accuracy.rs:
