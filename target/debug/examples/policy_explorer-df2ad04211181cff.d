/root/repo/target/debug/examples/policy_explorer-df2ad04211181cff.d: examples/policy_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_explorer-df2ad04211181cff.rmeta: examples/policy_explorer.rs Cargo.toml

examples/policy_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
