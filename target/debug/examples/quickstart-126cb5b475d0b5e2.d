/root/repo/target/debug/examples/quickstart-126cb5b475d0b5e2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-126cb5b475d0b5e2: examples/quickstart.rs

examples/quickstart.rs:
