/root/repo/target/debug/examples/calib-e311d8aca49bf1e6.d: crates/workloads/examples/calib.rs Cargo.toml

/root/repo/target/debug/examples/libcalib-e311d8aca49bf1e6.rmeta: crates/workloads/examples/calib.rs Cargo.toml

crates/workloads/examples/calib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
