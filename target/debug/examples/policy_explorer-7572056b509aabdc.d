/root/repo/target/debug/examples/policy_explorer-7572056b509aabdc.d: examples/policy_explorer.rs

/root/repo/target/debug/examples/policy_explorer-7572056b509aabdc: examples/policy_explorer.rs

examples/policy_explorer.rs:
