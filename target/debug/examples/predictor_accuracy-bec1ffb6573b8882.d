/root/repo/target/debug/examples/predictor_accuracy-bec1ffb6573b8882.d: examples/predictor_accuracy.rs Cargo.toml

/root/repo/target/debug/examples/libpredictor_accuracy-bec1ffb6573b8882.rmeta: examples/predictor_accuracy.rs Cargo.toml

examples/predictor_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
