/root/repo/target/debug/examples/calib-2a3f2b5640c3dc5b.d: crates/workloads/examples/calib.rs

/root/repo/target/debug/examples/calib-2a3f2b5640c3dc5b: crates/workloads/examples/calib.rs

crates/workloads/examples/calib.rs:
