/root/repo/target/debug/deps/ablations-bd6006f26511708c.d: crates/experiments/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-bd6006f26511708c.rmeta: crates/experiments/src/bin/ablations.rs Cargo.toml

crates/experiments/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
