/root/repo/target/debug/deps/ablations-399f899e043b7dc4.d: crates/experiments/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-399f899e043b7dc4.rmeta: crates/experiments/src/bin/ablations.rs Cargo.toml

crates/experiments/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
