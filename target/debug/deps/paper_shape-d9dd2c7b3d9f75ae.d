/root/repo/target/debug/deps/paper_shape-d9dd2c7b3d9f75ae.d: tests/paper_shape.rs

/root/repo/target/debug/deps/paper_shape-d9dd2c7b3d9f75ae: tests/paper_shape.rs

tests/paper_shape.rs:
