/root/repo/target/debug/deps/table2-a81ca1691232e79e.d: crates/experiments/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-a81ca1691232e79e.rmeta: crates/experiments/src/bin/table2.rs Cargo.toml

crates/experiments/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
