/root/repo/target/debug/deps/figures-2bd52abe158e7aea.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-2bd52abe158e7aea: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
