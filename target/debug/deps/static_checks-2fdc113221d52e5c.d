/root/repo/target/debug/deps/static_checks-2fdc113221d52e5c.d: tests/static_checks.rs

/root/repo/target/debug/deps/static_checks-2fdc113221d52e5c: tests/static_checks.rs

tests/static_checks.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
