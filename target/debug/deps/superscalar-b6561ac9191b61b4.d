/root/repo/target/debug/deps/superscalar-b6561ac9191b61b4.d: crates/experiments/src/bin/superscalar.rs Cargo.toml

/root/repo/target/debug/deps/libsuperscalar-b6561ac9191b61b4.rmeta: crates/experiments/src/bin/superscalar.rs Cargo.toml

crates/experiments/src/bin/superscalar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
