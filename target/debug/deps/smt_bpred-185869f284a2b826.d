/root/repo/target/debug/deps/smt_bpred-185869f284a2b826.d: crates/bpred/src/lib.rs crates/bpred/src/assoc.rs crates/bpred/src/btb.rs crates/bpred/src/counters.rs crates/bpred/src/ftb.rs crates/bpred/src/gshare.rs crates/bpred/src/gskew.rs crates/bpred/src/history.rs crates/bpred/src/ras.rs crates/bpred/src/stream.rs crates/bpred/src/tracecache.rs Cargo.toml

/root/repo/target/debug/deps/libsmt_bpred-185869f284a2b826.rmeta: crates/bpred/src/lib.rs crates/bpred/src/assoc.rs crates/bpred/src/btb.rs crates/bpred/src/counters.rs crates/bpred/src/ftb.rs crates/bpred/src/gshare.rs crates/bpred/src/gskew.rs crates/bpred/src/history.rs crates/bpred/src/ras.rs crates/bpred/src/stream.rs crates/bpred/src/tracecache.rs Cargo.toml

crates/bpred/src/lib.rs:
crates/bpred/src/assoc.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/counters.rs:
crates/bpred/src/ftb.rs:
crates/bpred/src/gshare.rs:
crates/bpred/src/gskew.rs:
crates/bpred/src/history.rs:
crates/bpred/src/ras.rs:
crates/bpred/src/stream.rs:
crates/bpred/src/tracecache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
