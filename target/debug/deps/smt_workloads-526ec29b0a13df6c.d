/root/repo/target/debug/deps/smt_workloads-526ec29b0a13df6c.d: crates/workloads/src/lib.rs crates/workloads/src/behavior.rs crates/workloads/src/builder.rs crates/workloads/src/program.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/walker.rs crates/workloads/src/workloads.rs

/root/repo/target/debug/deps/smt_workloads-526ec29b0a13df6c: crates/workloads/src/lib.rs crates/workloads/src/behavior.rs crates/workloads/src/builder.rs crates/workloads/src/program.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/walker.rs crates/workloads/src/workloads.rs

crates/workloads/src/lib.rs:
crates/workloads/src/behavior.rs:
crates/workloads/src/builder.rs:
crates/workloads/src/program.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/walker.rs:
crates/workloads/src/workloads.rs:
