/root/repo/target/debug/deps/tracecache-f4dbcf937617dc5d.d: crates/experiments/src/bin/tracecache.rs Cargo.toml

/root/repo/target/debug/deps/libtracecache-f4dbcf937617dc5d.rmeta: crates/experiments/src/bin/tracecache.rs Cargo.toml

crates/experiments/src/bin/tracecache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
