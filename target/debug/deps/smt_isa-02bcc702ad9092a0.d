/root/repo/target/debug/deps/smt_isa-02bcc702ad9092a0.d: crates/isa/src/lib.rs crates/isa/src/addr.rs crates/isa/src/block.rs crates/isa/src/diag.rs crates/isa/src/inst.rs crates/isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libsmt_isa-02bcc702ad9092a0.rmeta: crates/isa/src/lib.rs crates/isa/src/addr.rs crates/isa/src/block.rs crates/isa/src/diag.rs crates/isa/src/inst.rs crates/isa/src/reg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/addr.rs:
crates/isa/src/block.rs:
crates/isa/src/diag.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
