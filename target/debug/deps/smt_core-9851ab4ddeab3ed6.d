/root/repo/target/debug/deps/smt_core-9851ab4ddeab3ed6.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/metrics.rs crates/core/src/sim.rs crates/core/src/thread.rs

/root/repo/target/debug/deps/libsmt_core-9851ab4ddeab3ed6.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/metrics.rs crates/core/src/sim.rs crates/core/src/thread.rs

/root/repo/target/debug/deps/libsmt_core-9851ab4ddeab3ed6.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/metrics.rs crates/core/src/sim.rs crates/core/src/thread.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/metrics.rs:
crates/core/src/sim.rs:
crates/core/src/thread.rs:
