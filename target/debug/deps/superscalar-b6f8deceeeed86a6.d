/root/repo/target/debug/deps/superscalar-b6f8deceeeed86a6.d: crates/experiments/src/bin/superscalar.rs

/root/repo/target/debug/deps/superscalar-b6f8deceeeed86a6: crates/experiments/src/bin/superscalar.rs

crates/experiments/src/bin/superscalar.rs:
