/root/repo/target/debug/deps/smt_experiments-a769e1789d54da52.d: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs

/root/repo/target/debug/deps/libsmt_experiments-a769e1789d54da52.rlib: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs

/root/repo/target/debug/deps/libsmt_experiments-a769e1789d54da52.rmeta: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs

crates/experiments/src/lib.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/sweep.rs:
