/root/repo/target/debug/deps/smt_bench-3d7c03dca0c461a9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsmt_bench-3d7c03dca0c461a9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
