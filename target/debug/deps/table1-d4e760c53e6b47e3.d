/root/repo/target/debug/deps/table1-d4e760c53e6b47e3.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/table1-d4e760c53e6b47e3: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
