/root/repo/target/debug/deps/policies-53464978a3032a27.d: crates/experiments/src/bin/policies.rs Cargo.toml

/root/repo/target/debug/deps/libpolicies-53464978a3032a27.rmeta: crates/experiments/src/bin/policies.rs Cargo.toml

crates/experiments/src/bin/policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
