/root/repo/target/debug/deps/smt_workloads-a5cc848ca920c47d.d: crates/workloads/src/lib.rs crates/workloads/src/behavior.rs crates/workloads/src/builder.rs crates/workloads/src/program.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/walker.rs crates/workloads/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libsmt_workloads-a5cc848ca920c47d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/behavior.rs crates/workloads/src/builder.rs crates/workloads/src/program.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/walker.rs crates/workloads/src/workloads.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/behavior.rs:
crates/workloads/src/builder.rs:
crates/workloads/src/program.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/walker.rs:
crates/workloads/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
