/root/repo/target/debug/deps/smt_lint-f4c11dd1a8151ef0.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/smt_lint-f4c11dd1a8151ef0: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
