/root/repo/target/debug/deps/simulator-492fb12a70ed0957.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-492fb12a70ed0957.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
