/root/repo/target/debug/deps/smt_experiments-f18a3dc8a79a5495.d: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs

/root/repo/target/debug/deps/smt_experiments-f18a3dc8a79a5495: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs

crates/experiments/src/lib.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/sweep.rs:
