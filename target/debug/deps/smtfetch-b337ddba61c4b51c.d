/root/repo/target/debug/deps/smtfetch-b337ddba61c4b51c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsmtfetch-b337ddba61c4b51c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
