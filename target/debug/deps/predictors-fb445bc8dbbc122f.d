/root/repo/target/debug/deps/predictors-fb445bc8dbbc122f.d: crates/bench/benches/predictors.rs Cargo.toml

/root/repo/target/debug/deps/libpredictors-fb445bc8dbbc122f.rmeta: crates/bench/benches/predictors.rs Cargo.toml

crates/bench/benches/predictors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
