/root/repo/target/debug/deps/golden-19423c5f96c95b37.d: tests/golden.rs

/root/repo/target/debug/deps/golden-19423c5f96c95b37: tests/golden.rs

tests/golden.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
