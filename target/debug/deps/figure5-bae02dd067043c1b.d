/root/repo/target/debug/deps/figure5-bae02dd067043c1b.d: crates/experiments/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-bae02dd067043c1b: crates/experiments/src/bin/figure5.rs

crates/experiments/src/bin/figure5.rs:
