/root/repo/target/debug/deps/table2-803d0695d369723e.d: crates/experiments/src/bin/table2.rs

/root/repo/target/debug/deps/table2-803d0695d369723e: crates/experiments/src/bin/table2.rs

crates/experiments/src/bin/table2.rs:
