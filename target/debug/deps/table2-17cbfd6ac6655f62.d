/root/repo/target/debug/deps/table2-17cbfd6ac6655f62.d: crates/experiments/src/bin/table2.rs

/root/repo/target/debug/deps/table2-17cbfd6ac6655f62: crates/experiments/src/bin/table2.rs

crates/experiments/src/bin/table2.rs:
