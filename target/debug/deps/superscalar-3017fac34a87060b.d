/root/repo/target/debug/deps/superscalar-3017fac34a87060b.d: crates/experiments/src/bin/superscalar.rs

/root/repo/target/debug/deps/superscalar-3017fac34a87060b: crates/experiments/src/bin/superscalar.rs

crates/experiments/src/bin/superscalar.rs:
