/root/repo/target/debug/deps/figure7-de3c10f652f03a81.d: crates/experiments/src/bin/figure7.rs

/root/repo/target/debug/deps/figure7-de3c10f652f03a81: crates/experiments/src/bin/figure7.rs

crates/experiments/src/bin/figure7.rs:
