/root/repo/target/debug/deps/smt_lint-e0c88d31a372d78d.d: crates/lint/src/lib.rs

/root/repo/target/debug/deps/libsmt_lint-e0c88d31a372d78d.rlib: crates/lint/src/lib.rs

/root/repo/target/debug/deps/libsmt_lint-e0c88d31a372d78d.rmeta: crates/lint/src/lib.rs

crates/lint/src/lib.rs:
