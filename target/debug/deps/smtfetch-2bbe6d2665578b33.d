/root/repo/target/debug/deps/smtfetch-2bbe6d2665578b33.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsmtfetch-2bbe6d2665578b33.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
