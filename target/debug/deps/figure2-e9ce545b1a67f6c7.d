/root/repo/target/debug/deps/figure2-e9ce545b1a67f6c7.d: crates/experiments/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-e9ce545b1a67f6c7.rmeta: crates/experiments/src/bin/figure2.rs Cargo.toml

crates/experiments/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
