/root/repo/target/debug/deps/paper_shape-64be2368f97c080b.d: tests/paper_shape.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shape-64be2368f97c080b.rmeta: tests/paper_shape.rs Cargo.toml

tests/paper_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
