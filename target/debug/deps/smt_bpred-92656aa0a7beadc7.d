/root/repo/target/debug/deps/smt_bpred-92656aa0a7beadc7.d: crates/bpred/src/lib.rs crates/bpred/src/assoc.rs crates/bpred/src/btb.rs crates/bpred/src/counters.rs crates/bpred/src/ftb.rs crates/bpred/src/gshare.rs crates/bpred/src/gskew.rs crates/bpred/src/history.rs crates/bpred/src/ras.rs crates/bpred/src/stream.rs crates/bpred/src/tracecache.rs

/root/repo/target/debug/deps/smt_bpred-92656aa0a7beadc7: crates/bpred/src/lib.rs crates/bpred/src/assoc.rs crates/bpred/src/btb.rs crates/bpred/src/counters.rs crates/bpred/src/ftb.rs crates/bpred/src/gshare.rs crates/bpred/src/gskew.rs crates/bpred/src/history.rs crates/bpred/src/ras.rs crates/bpred/src/stream.rs crates/bpred/src/tracecache.rs

crates/bpred/src/lib.rs:
crates/bpred/src/assoc.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/counters.rs:
crates/bpred/src/ftb.rs:
crates/bpred/src/gshare.rs:
crates/bpred/src/gskew.rs:
crates/bpred/src/history.rs:
crates/bpred/src/ras.rs:
crates/bpred/src/stream.rs:
crates/bpred/src/tracecache.rs:
