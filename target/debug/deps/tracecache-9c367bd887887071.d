/root/repo/target/debug/deps/tracecache-9c367bd887887071.d: crates/experiments/src/bin/tracecache.rs

/root/repo/target/debug/deps/tracecache-9c367bd887887071: crates/experiments/src/bin/tracecache.rs

crates/experiments/src/bin/tracecache.rs:
