/root/repo/target/debug/deps/figures-9e9612f1fbe1c142.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-9e9612f1fbe1c142.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
