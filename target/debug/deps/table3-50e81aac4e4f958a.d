/root/repo/target/debug/deps/table3-50e81aac4e4f958a.d: crates/experiments/src/bin/table3.rs

/root/repo/target/debug/deps/table3-50e81aac4e4f958a: crates/experiments/src/bin/table3.rs

crates/experiments/src/bin/table3.rs:
