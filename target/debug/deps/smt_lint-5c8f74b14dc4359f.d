/root/repo/target/debug/deps/smt_lint-5c8f74b14dc4359f.d: crates/lint/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsmt_lint-5c8f74b14dc4359f.rmeta: crates/lint/src/lib.rs Cargo.toml

crates/lint/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
