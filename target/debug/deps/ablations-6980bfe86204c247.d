/root/repo/target/debug/deps/ablations-6980bfe86204c247.d: crates/experiments/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-6980bfe86204c247: crates/experiments/src/bin/ablations.rs

crates/experiments/src/bin/ablations.rs:
