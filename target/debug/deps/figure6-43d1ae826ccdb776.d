/root/repo/target/debug/deps/figure6-43d1ae826ccdb776.d: crates/experiments/src/bin/figure6.rs Cargo.toml

/root/repo/target/debug/deps/libfigure6-43d1ae826ccdb776.rmeta: crates/experiments/src/bin/figure6.rs Cargo.toml

crates/experiments/src/bin/figure6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
