/root/repo/target/debug/deps/all-ef0a74e3d1f673da.d: crates/experiments/src/bin/all.rs Cargo.toml

/root/repo/target/debug/deps/liball-ef0a74e3d1f673da.rmeta: crates/experiments/src/bin/all.rs Cargo.toml

crates/experiments/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
