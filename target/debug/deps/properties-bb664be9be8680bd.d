/root/repo/target/debug/deps/properties-bb664be9be8680bd.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bb664be9be8680bd.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
