/root/repo/target/debug/deps/smt_isa-21681ed587f0c7fb.d: crates/isa/src/lib.rs crates/isa/src/addr.rs crates/isa/src/block.rs crates/isa/src/diag.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/smt_isa-21681ed587f0c7fb: crates/isa/src/lib.rs crates/isa/src/addr.rs crates/isa/src/block.rs crates/isa/src/diag.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/addr.rs:
crates/isa/src/block.rs:
crates/isa/src/diag.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
