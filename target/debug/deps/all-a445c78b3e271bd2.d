/root/repo/target/debug/deps/all-a445c78b3e271bd2.d: crates/experiments/src/bin/all.rs Cargo.toml

/root/repo/target/debug/deps/liball-a445c78b3e271bd2.rmeta: crates/experiments/src/bin/all.rs Cargo.toml

crates/experiments/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
