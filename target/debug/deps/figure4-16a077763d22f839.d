/root/repo/target/debug/deps/figure4-16a077763d22f839.d: crates/experiments/src/bin/figure4.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4-16a077763d22f839.rmeta: crates/experiments/src/bin/figure4.rs Cargo.toml

crates/experiments/src/bin/figure4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
