/root/repo/target/debug/deps/smt_lint-01f2da557b6028ba.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/smt_lint-01f2da557b6028ba: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
