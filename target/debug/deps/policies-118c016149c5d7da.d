/root/repo/target/debug/deps/policies-118c016149c5d7da.d: crates/experiments/src/bin/policies.rs

/root/repo/target/debug/deps/policies-118c016149c5d7da: crates/experiments/src/bin/policies.rs

crates/experiments/src/bin/policies.rs:
