/root/repo/target/debug/deps/golden-97d398594fedbc35.d: tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-97d398594fedbc35.rmeta: tests/golden.rs Cargo.toml

tests/golden.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
