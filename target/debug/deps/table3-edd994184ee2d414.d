/root/repo/target/debug/deps/table3-edd994184ee2d414.d: crates/experiments/src/bin/table3.rs

/root/repo/target/debug/deps/table3-edd994184ee2d414: crates/experiments/src/bin/table3.rs

crates/experiments/src/bin/table3.rs:
