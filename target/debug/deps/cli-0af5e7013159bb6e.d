/root/repo/target/debug/deps/cli-0af5e7013159bb6e.d: crates/lint/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-0af5e7013159bb6e.rmeta: crates/lint/tests/cli.rs Cargo.toml

crates/lint/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_smt-lint=placeholder:smt-lint
# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
