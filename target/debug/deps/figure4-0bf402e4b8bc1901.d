/root/repo/target/debug/deps/figure4-0bf402e4b8bc1901.d: crates/experiments/src/bin/figure4.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4-0bf402e4b8bc1901.rmeta: crates/experiments/src/bin/figure4.rs Cargo.toml

crates/experiments/src/bin/figure4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
