/root/repo/target/debug/deps/figure6-aa6ffdfd104707d1.d: crates/experiments/src/bin/figure6.rs Cargo.toml

/root/repo/target/debug/deps/libfigure6-aa6ffdfd104707d1.rmeta: crates/experiments/src/bin/figure6.rs Cargo.toml

crates/experiments/src/bin/figure6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
