/root/repo/target/debug/deps/figure2-868fa1eadbf416c3.d: crates/experiments/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-868fa1eadbf416c3.rmeta: crates/experiments/src/bin/figure2.rs Cargo.toml

crates/experiments/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
