/root/repo/target/debug/deps/figure5-6aab22bf046e5e72.d: crates/experiments/src/bin/figure5.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5-6aab22bf046e5e72.rmeta: crates/experiments/src/bin/figure5.rs Cargo.toml

crates/experiments/src/bin/figure5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
