/root/repo/target/debug/deps/smt_experiments-5f49caf4ec7b79f3.d: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsmt_experiments-5f49caf4ec7b79f3.rmeta: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
