/root/repo/target/debug/deps/smt_core-fabb41942a591b71.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/metrics.rs crates/core/src/sim.rs crates/core/src/thread.rs Cargo.toml

/root/repo/target/debug/deps/libsmt_core-fabb41942a591b71.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/metrics.rs crates/core/src/sim.rs crates/core/src/thread.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/metrics.rs:
crates/core/src/sim.rs:
crates/core/src/thread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
