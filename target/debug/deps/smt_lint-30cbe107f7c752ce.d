/root/repo/target/debug/deps/smt_lint-30cbe107f7c752ce.d: crates/lint/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsmt_lint-30cbe107f7c752ce.rmeta: crates/lint/src/lib.rs Cargo.toml

crates/lint/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
