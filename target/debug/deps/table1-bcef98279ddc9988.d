/root/repo/target/debug/deps/table1-bcef98279ddc9988.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/table1-bcef98279ddc9988: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
