/root/repo/target/debug/deps/end_to_end-56865f76d54c6b69.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-56865f76d54c6b69: tests/end_to_end.rs

tests/end_to_end.rs:
