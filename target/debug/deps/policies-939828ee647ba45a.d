/root/repo/target/debug/deps/policies-939828ee647ba45a.d: crates/experiments/src/bin/policies.rs Cargo.toml

/root/repo/target/debug/deps/libpolicies-939828ee647ba45a.rmeta: crates/experiments/src/bin/policies.rs Cargo.toml

crates/experiments/src/bin/policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
