/root/repo/target/debug/deps/smt_bpred-8f3adf0217516cbb.d: crates/bpred/src/lib.rs crates/bpred/src/assoc.rs crates/bpred/src/btb.rs crates/bpred/src/counters.rs crates/bpred/src/ftb.rs crates/bpred/src/gshare.rs crates/bpred/src/gskew.rs crates/bpred/src/history.rs crates/bpred/src/ras.rs crates/bpred/src/stream.rs crates/bpred/src/tracecache.rs

/root/repo/target/debug/deps/libsmt_bpred-8f3adf0217516cbb.rlib: crates/bpred/src/lib.rs crates/bpred/src/assoc.rs crates/bpred/src/btb.rs crates/bpred/src/counters.rs crates/bpred/src/ftb.rs crates/bpred/src/gshare.rs crates/bpred/src/gskew.rs crates/bpred/src/history.rs crates/bpred/src/ras.rs crates/bpred/src/stream.rs crates/bpred/src/tracecache.rs

/root/repo/target/debug/deps/libsmt_bpred-8f3adf0217516cbb.rmeta: crates/bpred/src/lib.rs crates/bpred/src/assoc.rs crates/bpred/src/btb.rs crates/bpred/src/counters.rs crates/bpred/src/ftb.rs crates/bpred/src/gshare.rs crates/bpred/src/gskew.rs crates/bpred/src/history.rs crates/bpred/src/ras.rs crates/bpred/src/stream.rs crates/bpred/src/tracecache.rs

crates/bpred/src/lib.rs:
crates/bpred/src/assoc.rs:
crates/bpred/src/btb.rs:
crates/bpred/src/counters.rs:
crates/bpred/src/ftb.rs:
crates/bpred/src/gshare.rs:
crates/bpred/src/gskew.rs:
crates/bpred/src/history.rs:
crates/bpred/src/ras.rs:
crates/bpred/src/stream.rs:
crates/bpred/src/tracecache.rs:
