/root/repo/target/debug/deps/smt_bench-bb5e9dfdac49e284.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsmt_bench-bb5e9dfdac49e284.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsmt_bench-bb5e9dfdac49e284.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
