/root/repo/target/debug/deps/predictors-d0297d2f7de57fd3.d: crates/bench/benches/predictors.rs

/root/repo/target/debug/deps/predictors-d0297d2f7de57fd3: crates/bench/benches/predictors.rs

crates/bench/benches/predictors.rs:
