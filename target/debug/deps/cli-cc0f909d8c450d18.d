/root/repo/target/debug/deps/cli-cc0f909d8c450d18.d: crates/lint/tests/cli.rs

/root/repo/target/debug/deps/cli-cc0f909d8c450d18: crates/lint/tests/cli.rs

crates/lint/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_smt-lint=/root/repo/target/debug/smt-lint
# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
