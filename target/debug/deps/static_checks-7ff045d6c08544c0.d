/root/repo/target/debug/deps/static_checks-7ff045d6c08544c0.d: tests/static_checks.rs Cargo.toml

/root/repo/target/debug/deps/libstatic_checks-7ff045d6c08544c0.rmeta: tests/static_checks.rs Cargo.toml

tests/static_checks.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
