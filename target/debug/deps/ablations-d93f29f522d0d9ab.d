/root/repo/target/debug/deps/ablations-d93f29f522d0d9ab.d: crates/experiments/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-d93f29f522d0d9ab: crates/experiments/src/bin/ablations.rs

crates/experiments/src/bin/ablations.rs:
