/root/repo/target/debug/deps/smt_core-e044eabda12b1614.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/metrics.rs crates/core/src/sim.rs crates/core/src/thread.rs

/root/repo/target/debug/deps/smt_core-e044eabda12b1614: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/metrics.rs crates/core/src/sim.rs crates/core/src/thread.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/metrics.rs:
crates/core/src/sim.rs:
crates/core/src/thread.rs:
