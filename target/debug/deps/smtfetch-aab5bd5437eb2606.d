/root/repo/target/debug/deps/smtfetch-aab5bd5437eb2606.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsmtfetch-aab5bd5437eb2606.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
