/root/repo/target/debug/deps/smtfetch-80597e2fc3fe5df1.d: src/lib.rs

/root/repo/target/debug/deps/smtfetch-80597e2fc3fe5df1: src/lib.rs

src/lib.rs:
