/root/repo/target/debug/deps/properties-21a808f6240aedc1.d: tests/properties.rs

/root/repo/target/debug/deps/properties-21a808f6240aedc1: tests/properties.rs

tests/properties.rs:
