/root/repo/target/debug/deps/figure7-7ec5a9528f43360f.d: crates/experiments/src/bin/figure7.rs Cargo.toml

/root/repo/target/debug/deps/libfigure7-7ec5a9528f43360f.rmeta: crates/experiments/src/bin/figure7.rs Cargo.toml

crates/experiments/src/bin/figure7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
