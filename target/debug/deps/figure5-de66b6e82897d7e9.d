/root/repo/target/debug/deps/figure5-de66b6e82897d7e9.d: crates/experiments/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-de66b6e82897d7e9: crates/experiments/src/bin/figure5.rs

crates/experiments/src/bin/figure5.rs:
