/root/repo/target/debug/deps/figure2-5317add654fb219c.d: crates/experiments/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-5317add654fb219c: crates/experiments/src/bin/figure2.rs

crates/experiments/src/bin/figure2.rs:
