/root/repo/target/debug/deps/smt_bench-7d7aedc623c1d175.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/smt_bench-7d7aedc623c1d175: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
