/root/repo/target/debug/deps/figure7-32c20d9b1ae2b55e.d: crates/experiments/src/bin/figure7.rs Cargo.toml

/root/repo/target/debug/deps/libfigure7-32c20d9b1ae2b55e.rmeta: crates/experiments/src/bin/figure7.rs Cargo.toml

crates/experiments/src/bin/figure7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
