/root/repo/target/debug/deps/figure5-69b16031891abdd7.d: crates/experiments/src/bin/figure5.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5-69b16031891abdd7.rmeta: crates/experiments/src/bin/figure5.rs Cargo.toml

crates/experiments/src/bin/figure5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
