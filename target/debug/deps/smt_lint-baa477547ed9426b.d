/root/repo/target/debug/deps/smt_lint-baa477547ed9426b.d: crates/lint/src/lib.rs

/root/repo/target/debug/deps/smt_lint-baa477547ed9426b: crates/lint/src/lib.rs

crates/lint/src/lib.rs:
