/root/repo/target/debug/deps/figure8-465545b799021c61.d: crates/experiments/src/bin/figure8.rs

/root/repo/target/debug/deps/figure8-465545b799021c61: crates/experiments/src/bin/figure8.rs

crates/experiments/src/bin/figure8.rs:
