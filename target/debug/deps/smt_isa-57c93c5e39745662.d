/root/repo/target/debug/deps/smt_isa-57c93c5e39745662.d: crates/isa/src/lib.rs crates/isa/src/addr.rs crates/isa/src/block.rs crates/isa/src/diag.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libsmt_isa-57c93c5e39745662.rlib: crates/isa/src/lib.rs crates/isa/src/addr.rs crates/isa/src/block.rs crates/isa/src/diag.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libsmt_isa-57c93c5e39745662.rmeta: crates/isa/src/lib.rs crates/isa/src/addr.rs crates/isa/src/block.rs crates/isa/src/diag.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/addr.rs:
crates/isa/src/block.rs:
crates/isa/src/diag.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
