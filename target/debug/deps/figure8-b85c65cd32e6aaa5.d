/root/repo/target/debug/deps/figure8-b85c65cd32e6aaa5.d: crates/experiments/src/bin/figure8.rs Cargo.toml

/root/repo/target/debug/deps/libfigure8-b85c65cd32e6aaa5.rmeta: crates/experiments/src/bin/figure8.rs Cargo.toml

crates/experiments/src/bin/figure8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
