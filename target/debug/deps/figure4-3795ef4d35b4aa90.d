/root/repo/target/debug/deps/figure4-3795ef4d35b4aa90.d: crates/experiments/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-3795ef4d35b4aa90: crates/experiments/src/bin/figure4.rs

crates/experiments/src/bin/figure4.rs:
