/root/repo/target/debug/deps/smt_mem-944bda06854cd254.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/mshr.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/libsmt_mem-944bda06854cd254.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/mshr.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/libsmt_mem-944bda06854cd254.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/mshr.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/mshr.rs:
crates/mem/src/tlb.rs:
