/root/repo/target/debug/deps/figure6-809f92bc8f1a21af.d: crates/experiments/src/bin/figure6.rs

/root/repo/target/debug/deps/figure6-809f92bc8f1a21af: crates/experiments/src/bin/figure6.rs

crates/experiments/src/bin/figure6.rs:
