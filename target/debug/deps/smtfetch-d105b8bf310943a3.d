/root/repo/target/debug/deps/smtfetch-d105b8bf310943a3.d: src/main.rs

/root/repo/target/debug/deps/smtfetch-d105b8bf310943a3: src/main.rs

src/main.rs:
