/root/repo/target/debug/deps/smtfetch-8f715eefcf404def.d: src/main.rs

/root/repo/target/debug/deps/smtfetch-8f715eefcf404def: src/main.rs

src/main.rs:
