/root/repo/target/debug/deps/all-fbe1b4a5779cb338.d: crates/experiments/src/bin/all.rs

/root/repo/target/debug/deps/all-fbe1b4a5779cb338: crates/experiments/src/bin/all.rs

crates/experiments/src/bin/all.rs:
