/root/repo/target/debug/deps/policies-7f6d65bd1664cc89.d: crates/experiments/src/bin/policies.rs

/root/repo/target/debug/deps/policies-7f6d65bd1664cc89: crates/experiments/src/bin/policies.rs

crates/experiments/src/bin/policies.rs:
