/root/repo/target/debug/deps/simulator-0e629532947126a0.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/simulator-0e629532947126a0: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
