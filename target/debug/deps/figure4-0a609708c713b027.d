/root/repo/target/debug/deps/figure4-0a609708c713b027.d: crates/experiments/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-0a609708c713b027: crates/experiments/src/bin/figure4.rs

crates/experiments/src/bin/figure4.rs:
