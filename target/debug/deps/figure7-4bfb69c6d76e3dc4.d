/root/repo/target/debug/deps/figure7-4bfb69c6d76e3dc4.d: crates/experiments/src/bin/figure7.rs

/root/repo/target/debug/deps/figure7-4bfb69c6d76e3dc4: crates/experiments/src/bin/figure7.rs

crates/experiments/src/bin/figure7.rs:
