/root/repo/target/debug/deps/smt_experiments-a62e4007290a5c4f.d: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsmt_experiments-a62e4007290a5c4f.rmeta: crates/experiments/src/lib.rs crates/experiments/src/figures.rs crates/experiments/src/report.rs crates/experiments/src/runner.rs crates/experiments/src/sweep.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/report.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
