/root/repo/target/debug/deps/tracecache-bf3878a94d4f8a42.d: crates/experiments/src/bin/tracecache.rs Cargo.toml

/root/repo/target/debug/deps/libtracecache-bf3878a94d4f8a42.rmeta: crates/experiments/src/bin/tracecache.rs Cargo.toml

crates/experiments/src/bin/tracecache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
