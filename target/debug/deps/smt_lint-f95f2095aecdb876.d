/root/repo/target/debug/deps/smt_lint-f95f2095aecdb876.d: crates/lint/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsmt_lint-f95f2095aecdb876.rmeta: crates/lint/src/main.rs Cargo.toml

crates/lint/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
