/root/repo/target/debug/deps/tracecache-3bf0fcc37b92e459.d: crates/experiments/src/bin/tracecache.rs

/root/repo/target/debug/deps/tracecache-3bf0fcc37b92e459: crates/experiments/src/bin/tracecache.rs

crates/experiments/src/bin/tracecache.rs:
