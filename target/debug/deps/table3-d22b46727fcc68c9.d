/root/repo/target/debug/deps/table3-d22b46727fcc68c9.d: crates/experiments/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-d22b46727fcc68c9.rmeta: crates/experiments/src/bin/table3.rs Cargo.toml

crates/experiments/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
