/root/repo/target/debug/deps/smtfetch-ad3dc3e8f824b82a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsmtfetch-ad3dc3e8f824b82a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
