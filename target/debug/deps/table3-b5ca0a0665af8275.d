/root/repo/target/debug/deps/table3-b5ca0a0665af8275.d: crates/experiments/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-b5ca0a0665af8275.rmeta: crates/experiments/src/bin/table3.rs Cargo.toml

crates/experiments/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
