/root/repo/target/debug/deps/smtfetch-eed2c8fd819d4694.d: src/lib.rs

/root/repo/target/debug/deps/libsmtfetch-eed2c8fd819d4694.rlib: src/lib.rs

/root/repo/target/debug/deps/libsmtfetch-eed2c8fd819d4694.rmeta: src/lib.rs

src/lib.rs:
