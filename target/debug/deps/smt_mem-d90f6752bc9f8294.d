/root/repo/target/debug/deps/smt_mem-d90f6752bc9f8294.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/mshr.rs crates/mem/src/tlb.rs Cargo.toml

/root/repo/target/debug/deps/libsmt_mem-d90f6752bc9f8294.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/mshr.rs crates/mem/src/tlb.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/mshr.rs:
crates/mem/src/tlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
