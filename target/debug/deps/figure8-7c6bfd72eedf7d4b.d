/root/repo/target/debug/deps/figure8-7c6bfd72eedf7d4b.d: crates/experiments/src/bin/figure8.rs Cargo.toml

/root/repo/target/debug/deps/libfigure8-7c6bfd72eedf7d4b.rmeta: crates/experiments/src/bin/figure8.rs Cargo.toml

crates/experiments/src/bin/figure8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
