/root/repo/target/debug/deps/all-9842710e1cab9715.d: crates/experiments/src/bin/all.rs

/root/repo/target/debug/deps/all-9842710e1cab9715: crates/experiments/src/bin/all.rs

crates/experiments/src/bin/all.rs:
