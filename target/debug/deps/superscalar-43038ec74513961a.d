/root/repo/target/debug/deps/superscalar-43038ec74513961a.d: crates/experiments/src/bin/superscalar.rs Cargo.toml

/root/repo/target/debug/deps/libsuperscalar-43038ec74513961a.rmeta: crates/experiments/src/bin/superscalar.rs Cargo.toml

crates/experiments/src/bin/superscalar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
