/root/repo/target/debug/deps/table2-e073b193974b520f.d: crates/experiments/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-e073b193974b520f.rmeta: crates/experiments/src/bin/table2.rs Cargo.toml

crates/experiments/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
