/root/repo/target/debug/deps/smt_workloads-6c58cc9ab6b9cc45.d: crates/workloads/src/lib.rs crates/workloads/src/behavior.rs crates/workloads/src/builder.rs crates/workloads/src/program.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/walker.rs crates/workloads/src/workloads.rs

/root/repo/target/debug/deps/libsmt_workloads-6c58cc9ab6b9cc45.rlib: crates/workloads/src/lib.rs crates/workloads/src/behavior.rs crates/workloads/src/builder.rs crates/workloads/src/program.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/walker.rs crates/workloads/src/workloads.rs

/root/repo/target/debug/deps/libsmt_workloads-6c58cc9ab6b9cc45.rmeta: crates/workloads/src/lib.rs crates/workloads/src/behavior.rs crates/workloads/src/builder.rs crates/workloads/src/program.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/walker.rs crates/workloads/src/workloads.rs

crates/workloads/src/lib.rs:
crates/workloads/src/behavior.rs:
crates/workloads/src/builder.rs:
crates/workloads/src/program.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/walker.rs:
crates/workloads/src/workloads.rs:
