/root/repo/target/debug/deps/figure6-6fe7b6d31acfa0af.d: crates/experiments/src/bin/figure6.rs

/root/repo/target/debug/deps/figure6-6fe7b6d31acfa0af: crates/experiments/src/bin/figure6.rs

crates/experiments/src/bin/figure6.rs:
