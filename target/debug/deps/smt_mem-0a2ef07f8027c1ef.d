/root/repo/target/debug/deps/smt_mem-0a2ef07f8027c1ef.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/mshr.rs crates/mem/src/tlb.rs

/root/repo/target/debug/deps/smt_mem-0a2ef07f8027c1ef: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/hierarchy.rs crates/mem/src/mshr.rs crates/mem/src/tlb.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/hierarchy.rs:
crates/mem/src/mshr.rs:
crates/mem/src/tlb.rs:
