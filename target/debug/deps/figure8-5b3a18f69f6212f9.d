/root/repo/target/debug/deps/figure8-5b3a18f69f6212f9.d: crates/experiments/src/bin/figure8.rs

/root/repo/target/debug/deps/figure8-5b3a18f69f6212f9: crates/experiments/src/bin/figure8.rs

crates/experiments/src/bin/figure8.rs:
