/root/repo/target/debug/deps/smt_bench-68c325b57a0df58d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsmt_bench-68c325b57a0df58d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
