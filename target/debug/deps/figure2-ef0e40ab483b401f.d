/root/repo/target/debug/deps/figure2-ef0e40ab483b401f.d: crates/experiments/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-ef0e40ab483b401f: crates/experiments/src/bin/figure2.rs

crates/experiments/src/bin/figure2.rs:
