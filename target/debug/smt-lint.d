/root/repo/target/debug/smt-lint: /root/repo/crates/lint/src/lib.rs /root/repo/crates/lint/src/main.rs
