//! `smtfetch` — command-line driver for the SMT fetch-unit simulator.
//!
//! ```text
//! smtfetch [OPTIONS]
//!
//!   --workload <NAME>     Table 2 workload (2_ILP … 8_MIX) or a comma list
//!                         of benchmark names (e.g. gzip,twolf)   [2_MIX]
//!   --engine <ENGINE>     gshare | ftb | stream | tc             [stream]
//!   --policy <POLICY>     icount | rr | brcount | misscount      [icount]
//!   --threads-per-cycle N 1 or 2                                 [1]
//!   --width N             fetch width (e.g. 8, 16)               [16]
//!   --stall / --flush     long-latency-load gating (Tullsen & Brown)
//!   --cycles N            measured cycles                        [120000]
//!   --warmup N            warmup cycles                          [30000]
//!   --seed N              workload generation seed               [2004]
//!   --all-engines         run every engine and compare
//! ```

use std::process::ExitCode;

use smtfetch::core::{FetchEngineKind, FetchPolicy, SimBuilder, SimStats};
use smtfetch::workloads::{Workload, WorkloadClass};

#[derive(Debug)]
struct Options {
    workload: String,
    engine: FetchEngineKind,
    policy_kind: String,
    threads_per_cycle: u32,
    width: u32,
    stall: bool,
    flush: bool,
    cycles: u64,
    warmup: u64,
    seed: u64,
    all_engines: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workload: "2_MIX".to_string(),
            engine: FetchEngineKind::Stream,
            policy_kind: "icount".to_string(),
            threads_per_cycle: 1,
            width: 16,
            stall: false,
            flush: false,
            cycles: 120_000,
            warmup: 30_000,
            seed: 2004,
            all_engines: false,
        }
    }
}

fn parse_engine(s: &str) -> Result<FetchEngineKind, String> {
    match s {
        "gshare" | "gshare+btb" => Ok(FetchEngineKind::GshareBtb),
        "ftb" | "gskew" | "gskew+ftb" => Ok(FetchEngineKind::GskewFtb),
        "stream" => Ok(FetchEngineKind::Stream),
        "tc" | "trace" | "tracecache" => Ok(FetchEngineKind::TraceCache),
        other => Err(format!("unknown engine `{other}` (gshare|ftb|stream|tc)")),
    }
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--workload" | "-w" => o.workload = value("--workload")?,
            "--engine" | "-e" => o.engine = parse_engine(&value("--engine")?)?,
            "--policy" | "-p" => o.policy_kind = value("--policy")?,
            "--threads-per-cycle" | "-n" => {
                o.threads_per_cycle = value("-n")?.parse().map_err(|e| format!("-n: {e}"))?
            }
            "--width" | "-x" => {
                o.width = value("--width")?
                    .parse()
                    .map_err(|e| format!("--width: {e}"))?
            }
            "--stall" => o.stall = true,
            "--flush" => o.flush = true,
            "--cycles" | "-c" => {
                o.cycles = value("--cycles")?
                    .parse()
                    .map_err(|e| format!("--cycles: {e}"))?
            }
            "--warmup" => {
                o.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?
            }
            "--seed" | "-s" => {
                o.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--all-engines" => o.all_engines = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }
    Ok(o)
}

fn print_help() {
    println!(
        "smtfetch — SMT fetch-unit simulator (HPCA 2004 reproduction)\n\n\
         USAGE: smtfetch [OPTIONS]\n\n\
         OPTIONS:\n\
         \x20 -w, --workload <NAME>       2_ILP…8_MIX or benchmarks: gzip,twolf [2_MIX]\n\
         \x20 -e, --engine <ENGINE>       gshare | ftb | stream | tc            [stream]\n\
         \x20 -p, --policy <POLICY>       icount | rr | brcount | misscount     [icount]\n\
         \x20 -n, --threads-per-cycle <N> 1 or 2                                [1]\n\
         \x20 -x, --width <N>             fetch width                           [16]\n\
         \x20     --stall | --flush       long-latency-load gating\n\
         \x20 -c, --cycles <N>            measured cycles                       [120000]\n\
         \x20     --warmup <N>            warmup cycles                         [30000]\n\
         \x20 -s, --seed <N>              workload seed                         [2004]\n\
         \x20     --all-engines           compare all four engines\n\n\
         EXAMPLES:\n\
         \x20 smtfetch -w 4_ILP -e ftb -n 1 -x 16\n\
         \x20 smtfetch -w gzip,twolf,mcf --all-engines\n\
         \x20 smtfetch -w 4_MIX -e ftb -n 2 -x 8 --flush"
    );
}

fn resolve_workload(name: &str) -> Result<Workload, String> {
    if let Some(w) = Workload::all_table2()
        .into_iter()
        .find(|w| w.name() == name)
    {
        return Ok(w);
    }
    // Comma-separated benchmark list.
    let names: Vec<&str> = name
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if names.is_empty() {
        return Err("empty workload".into());
    }
    let leaked: Vec<&'static str> = names
        .iter()
        .map(|n| Box::leak(n.to_string().into_boxed_str()) as &'static str)
        .collect();
    Workload::custom(name.to_string(), WorkloadClass::Mix, &leaked)
        .map_err(|e| format!("{e} (Table 2 names: 2_ILP, 2_MEM, 2_MIX, 4_ILP, 4_MEM, 4_MIX, 6_ILP, 6_MIX, 8_ILP, 8_MIX)"))
}

fn build_policy(o: &Options) -> Result<FetchPolicy, String> {
    let mut p = match o.policy_kind.as_str() {
        "icount" => FetchPolicy::icount(o.threads_per_cycle, o.width),
        "rr" | "roundrobin" => FetchPolicy::round_robin(o.threads_per_cycle, o.width),
        "brcount" => FetchPolicy::br_count(o.threads_per_cycle, o.width),
        "misscount" => FetchPolicy::miss_count(o.threads_per_cycle, o.width),
        other => return Err(format!("unknown policy `{other}`")),
    };
    if o.stall {
        p = p.with_stall();
    }
    if o.flush {
        p = p.with_flush();
    }
    Ok(p)
}

fn simulate(
    w: &Workload,
    engine: FetchEngineKind,
    policy: FetchPolicy,
    o: &Options,
) -> Result<SimStats, String> {
    let mut sim = SimBuilder::new(w.programs(o.seed).map_err(|e| e.to_string())?)
        .fetch_engine(engine)
        .fetch_policy(policy)
        .build()
        .map_err(|e| e.to_string())?;
    sim.run_cycles(o.warmup);
    sim.reset_stats();
    sim.run_cycles(o.cycles);
    Ok(sim.stats().clone())
}

fn report(engine: FetchEngineKind, policy: FetchPolicy, w: &Workload, s: &SimStats) {
    println!("\n{engine} with {policy}");
    println!("  fetch throughput   {:>7.2} IPFC", s.ipfc());
    println!("  commit throughput  {:>7.2} IPC", s.ipc());
    println!(
        "  branch accuracy    {:>6.1}%   wrong-path fetch {:>5.1}%",
        s.branch_accuracy() * 100.0,
        s.wrong_path_fraction() * 100.0
    );
    let per: Vec<String> = (0..w.num_threads())
        .map(|t| {
            format!(
                "{}={:.2}",
                w.benchmarks().get(t).copied().unwrap_or("?"),
                s.committed[t] as f64 / s.cycles.max(1) as f64
            )
        })
        .collect();
    println!("  per-thread IPC     {}", per.join("  "));
    if s.flushes > 0 {
        println!("  long-latency flushes {}", s.flushes);
    }
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let w = match resolve_workload(&o.workload) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let policy = match build_policy(&o) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!("{w}");
    println!(
        "seed {}  warmup {}  measured {} cycles",
        o.seed, o.warmup, o.cycles
    );
    let engines: Vec<FetchEngineKind> = if o.all_engines {
        FetchEngineKind::all_with_trace_cache().to_vec()
    } else {
        vec![o.engine]
    };
    for e in engines {
        match simulate(&w, e, policy, &o) {
            Ok(s) => report(e, policy, &w, &s),
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
