//! # smtfetch — a reproduction of the HPCA 2004 SMT fetch-unit study
//!
//! This facade crate re-exports the full public API of the `smtfetch`
//! workspace, which reproduces Falcón, Ramirez & Valero, *"A Low-Complexity,
//! High-Performance Fetch Unit for Simultaneous Multithreading Processors"*
//! (HPCA 2004):
//!
//! * [`isa`] — the abstract instruction model;
//! * [`workloads`] — synthetic SPECint2000 benchmark clones and the paper's
//!   multithreaded workloads (Table 1, Table 2);
//! * [`bpred`] — branch-prediction substrates (gshare, gskew, BTB, FTB,
//!   stream predictor, RAS);
//! * [`mem`] — the cache hierarchy (Table 3);
//! * [`core`] — the SMT out-of-order pipeline with decoupled 1.X / 2.X fetch
//!   architectures and the ICOUNT fetch policy;
//! * [`experiments`] — runners that regenerate every table and figure of the
//!   paper's evaluation;
//! * [`serve`] — the sweep daemon: a persistent service that memoizes
//!   finished results by content hash, so repeated figure regenerations
//!   cost milliseconds.
//!
//! # Quickstart
//!
//! ```
//! use smtfetch::core::{FetchEngineKind, FetchPolicy, SimBuilder};
//! use smtfetch::workloads::Workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Simulate the paper's gzip–twolf 2_MIX workload for 20k cycles with the
//! // stream front-end fetching from one thread, 16 instructions per cycle.
//! let mut sim = SimBuilder::new(Workload::mix2().programs(42)?)
//!     .fetch_engine(FetchEngineKind::Stream)
//!     .fetch_policy(FetchPolicy::icount(1, 16))
//!     .build()?;
//! let stats = sim.run_cycles(20_000);
//! assert!(stats.ipc() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use smt_bpred as bpred;
pub use smt_core as core;
pub use smt_experiments as experiments;
pub use smt_isa as isa;
pub use smt_mem as mem;
pub use smt_serve as serve;
pub use smt_workloads as workloads;
